// This TU lives in src/core/ and may use the internal driver headers.
#define SWOPE_CORE_INTERNAL

#include "src/core/adaptive_sampling_driver.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/core/bounds.h"
#include "src/core/exec_control.h"
#include "src/core/prefix_sampler.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/query_trace.h"

namespace swope {

void Scorer::BeginRound(const std::vector<uint32_t>& /*order*/,
                        uint64_t /*begin*/, uint64_t /*end*/,
                        uint64_t /*m*/) {}

namespace {

// Sentinel shard index marking a whole-slice task (a candidate whose
// counters cannot be shard-decomposed, i.e. the sketch path).
constexpr size_t kWholeSlice = static_cast<size_t>(-1);

// One unit of a parallel round: one shard's sub-slice for a shardable
// candidate, or the entire slice for one that is not.
struct RoundTask {
  size_t candidate;
  size_t shard;
};

// Per-round scratch reused across rounds so steady-state scheduling
// allocates nothing.
struct RoundScratch {
  ShardSlicePartition partition;
  std::vector<RoundTask> tasks;
  std::vector<size_t> shardable;
  bool sharding_prepared = false;
};

void RunRoundTask(Scorer& scorer, const RoundTask& task,
                  const std::vector<uint32_t>& order,
                  PrefixSampler::Range range, uint64_t m,
                  const ShardSlicePartition& partition) {
  if (task.shard == kWholeSlice) {
    scorer.UpdateCandidate(task.candidate, order, range.begin, range.end, m);
  } else {
    scorer.UpdateCandidateShard(task.candidate, task.shard, partition);
  }
}

// The round's counter-update phase. Serial path (no pool): whole-slice
// UpdateCandidate per active candidate, exactly the pre-sharding loop.
// Parallel path: decompose into (candidate x shard) tasks -- each works
// one shard's sub-slice against (candidate, shard)-private state -- fan
// them out, then reduce each shardable candidate in FinalizeCandidate
// (frequency counters merge by exact integer addition in ascending
// shard order; joint counters replay the gathered codes in slice
// order). Both paths drive the counters through identical update
// sequences, so intervals are byte-identical at any thread count and
// any shard count; every cross-candidate reduction afterwards runs
// serially in Decide.
void UpdateActiveCandidates(Scorer& scorer,
                            const std::pmr::vector<size_t>& active,
                            const std::vector<uint32_t>& order,
                            PrefixSampler::Range range, uint64_t m,
                            const Table& table, ThreadPool* pool,
                            Histogram* task_latency, RoundScratch& scratch) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t idx : active) {
      scorer.UpdateCandidate(idx, order, range.begin, range.end, m);
    }
    return;
  }
  if (!scratch.sharding_prepared) {
    // Serial one-time sizing of the per-candidate delta counters; shard
    // tasks may then run concurrently without lazy-init races.
    scorer.PrepareSharding(table.num_shards());
    scratch.sharding_prepared = true;
  }
  scratch.partition.Build(order, range.begin, range.end, table.shard_size(),
                          table.num_shards());
  scratch.tasks.clear();
  scratch.shardable.clear();
  for (size_t idx : active) {
    if (scorer.CandidateShardable(idx)) {
      // Shardable even with zero tasks this round: FinalizeCandidate
      // must still refresh the interval at the new m.
      scratch.shardable.push_back(idx);
      for (size_t s = 0; s < scratch.partition.num_shards(); ++s) {
        if (!scratch.partition.local_rows(s).empty()) {
          scratch.tasks.push_back({idx, s});
        }
      }
    } else {
      scratch.tasks.push_back({idx, kWholeSlice});
    }
  }
  pool->ParallelFor(0, scratch.tasks.size(), [&](size_t t) {
    if (task_latency != nullptr) {
      Stopwatch timer;
      RunRoundTask(scorer, scratch.tasks[t], order, range, m,
                   scratch.partition);
      task_latency->Observe(timer.ElapsedMillis());
    } else {
      RunRoundTask(scorer, scratch.tasks[t], order, range, m,
                   scratch.partition);
    }
  });
  pool->ParallelFor(0, scratch.shardable.size(), [&](size_t i) {
    scorer.FinalizeCandidate(scratch.shardable[i], scratch.partition, m);
  });
}

}  // namespace

Result<AdaptiveSamplingDriver::Output> AdaptiveSamplingDriver::Run(
    Scorer& scorer, DecisionPolicy& policy) {
  const uint64_t n = table_.num_rows();
  const size_t h = table_.num_columns();

  const double pf = options_.ResolveFailureProbability(n);
  const uint64_t m0 =
      options_.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options_.initial_sample_size))
          : ComputeM0(n, h, pf, table_.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  // Splits the failure budget over rounds and candidates; the scorer's
  // union-bound multiplier covers how many intervals it derives per
  // candidate per round.
  const double p_iter =
      pf / (scorer.bounds_per_candidate() * static_cast<double>(i_max) *
            static_cast<double>(scorer.num_candidates()));
  scorer.Bind(n, p_iter);

  std::pmr::memory_resource* const memory = ResolveQueryMemory(options_);
  Output output(memory);
  output.stats.initial_sample_size = m0;

  SWOPE_ASSIGN_OR_RETURN(
      PrefixSampler sampler,
      MakePrefixSampler(static_cast<uint32_t>(n), options_));
  std::pmr::vector<size_t> active(memory);
  active.resize(scorer.num_candidates());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;

  // Tracing cost when disabled is the null checks below -- one branch per
  // round -- plus this one Stopwatch construction (a single clock read)
  // per query. BM_MetricsOverhead pins that to <1%.
  QueryTrace* const trace = options_.trace;
  Stopwatch round_timer;
  RoundScratch scratch;

  uint64_t m = std::min<uint64_t>(m0, n);
  bool done = false;
  while (!done && !active.empty()) {
    if (options_.control != nullptr) {
      SWOPE_RETURN_NOT_OK(options_.control->Check());
    }
    if (trace != nullptr) round_timer.Reset();
    ++output.stats.iterations;
    const PrefixSampler::Range range = sampler.GrowTo(m);
    scorer.BeginRound(sampler.order(), range.begin, range.end, m);
    UpdateActiveCandidates(scorer, active, sampler.order(), range, m, table_,
                           options_.pool, options_.shard_task_latency,
                           scratch);
    const size_t active_before = active.size();
    const uint64_t round_cells =
        (range.end - range.begin) * scorer.CellsPerRow(active_before);
    output.stats.cells_scanned += round_cells;

    // The bias slack snapshot must precede Decide: it covers the
    // candidates the round actually evaluated, not the survivors.
    double max_bias = 0.0;
    if (trace != nullptr) {
      for (size_t idx : active) {
        max_bias = std::max(max_bias, scorer.interval(idx).slack);
      }
    }

    {
      // Decision work is cross-candidate ranking/pruning; the scorers
      // attribute their own stages, so this brackets only the policy.
      StageTimer decide_timer(options_.profiler, Stage::kFinalize);
      done = policy.Decide(scorer, active, m, n, output.items);
    }

    if (trace != nullptr) {
      RoundTrace round;
      round.round = output.stats.iterations;
      round.sample_size = m;
      round.lambda = PermutationLambda(n, m, p_iter);
      round.max_bias = max_bias;
      round.active_before = static_cast<uint32_t>(active_before);
      round.decided = static_cast<uint32_t>(active_before - active.size());
      round.cells_scanned = round_cells;
      round.wall_ms = round_timer.ElapsedMillis();
      trace->Record(round);
    }

    if (!done) {
      const uint64_t grown = static_cast<uint64_t>(
          std::ceil(static_cast<double>(m) * options_.growth_factor));
      m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
    }
  }

  {
    StageTimer finalize_timer(options_.profiler, Stage::kFinalize);
    policy.Finalize(scorer, active, output.items);
  }
  output.stats.final_sample_size = sampler.consumed();
  output.stats.sketch_candidates = scorer.sketch_candidates();
  output.stats.candidates_remaining = active.size();
  output.stats.exhausted_dataset = (sampler.consumed() >= n);
  return output;
}

bool TopKPolicy::Decide(const Scorer& scorer, std::pmr::vector<size_t>& active,
                        uint64_t m, uint64_t n,
                        std::pmr::vector<AttributeScore>& /*items*/) {
  // k-th largest upper bound over the active set. The selection buffers
  // are members so rounds after the first reuse their capacity.
  uppers_.clear();
  uppers_.reserve(active.size());
  for (size_t idx : active) uppers_.push_back(scorer.interval(idx).upper);
  std::nth_element(uppers_.begin(), uppers_.begin() + (k_ - 1), uppers_.end(),
                   std::greater<double>());
  const double kth_upper = uppers_[k_ - 1];

  if (scorer.TopKShouldStop(active, kth_upper, m, epsilon_)) return true;
  if (m >= n) {
    // Bounds are exact at M = N, so the stopping rule always fires there;
    // this is a defensive backstop.
    return true;
  }

  // Prune candidates that cannot be in the top-k: upper bound strictly
  // below the k-th largest lower bound (Algorithm 1 lines 14-17).
  lowers_.clear();
  lowers_.reserve(active.size());
  for (size_t idx : active) lowers_.push_back(scorer.interval(idx).lower);
  std::nth_element(lowers_.begin(), lowers_.begin() + (k_ - 1), lowers_.end(),
                   std::greater<double>());
  const double kth_lower = lowers_[k_ - 1];
  std::erase_if(active, [&](size_t idx) {
    return scorer.interval(idx).upper < kth_lower;
  });
  return false;
}

void TopKPolicy::Finalize(const Scorer& scorer,
                          const std::pmr::vector<size_t>& active,
                          std::pmr::vector<AttributeScore>& items) {
  // Order the active candidates by descending upper bound (ties by
  // ascending column index) and emit the top k.
  order_.assign(active.begin(), active.end());
  std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
    if (scorer.interval(a).upper != scorer.interval(b).upper) {
      return scorer.interval(a).upper > scorer.interval(b).upper;
    }
    return scorer.column(a) < scorer.column(b);
  });
  order_.resize(std::min(order_.size(), k_));
  for (size_t idx : order_) {
    const ScoreInterval& interval = scorer.interval(idx);
    items.push_back({scorer.column(idx),
                     table_.column(scorer.column(idx)).name(),
                     interval.Estimate(), interval.lower, interval.upper});
  }
}

bool FilterPolicy::Decide(const Scorer& scorer,
                          std::pmr::vector<size_t>& active, uint64_t m,
                          uint64_t n, std::pmr::vector<AttributeScore>& items) {
  std::pmr::vector<size_t>& still_active = still_active_;
  still_active.clear();
  still_active.reserve(active.size());
  for (size_t idx : active) {
    const ScoreInterval& interval = scorer.interval(idx);
    const size_t column = scorer.column(idx);
    // Rules in the paper's order (Algorithm 2 lines 6-14).
    if (interval.Width() < 2.0 * epsilon_ * eta_) {
      if (interval.Estimate() >= eta_) {
        items.push_back({column, table_.column(column).name(),
                         interval.Estimate(), interval.lower,
                         interval.upper});
      }
    } else if (interval.lower >= (1.0 - epsilon_) * eta_) {
      items.push_back({column, table_.column(column).name(),
                       interval.Estimate(), interval.lower, interval.upper});
    } else if (interval.upper < (1.0 + epsilon_) * eta_) {
      // rejected
    } else {
      still_active.push_back(idx);
    }
  }
  if (active.get_allocator() == still_active.get_allocator()) {
    // Buffer ping-pong: both vectors keep their capacities, so
    // steady-state rounds allocate nothing.
    active.swap(still_active);
    still_active.clear();
  } else {
    active.assign(still_active.begin(), still_active.end());
  }

  // Exact bounds have zero width at M = N, so everything is classified
  // above; the m >= n arm is a defensive backstop.
  return active.empty() || m >= n;
}

void FilterPolicy::Finalize(const Scorer& /*scorer*/,
                            const std::pmr::vector<size_t>& /*active*/,
                            std::pmr::vector<AttributeScore>& items) {
  std::sort(items.begin(), items.end(),
            [](const AttributeScore& a, const AttributeScore& b) {
              return a.index < b.index;
            });
}

}  // namespace swope
