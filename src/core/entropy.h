// Exact empirical entropy / joint entropy / mutual information kernels
// (Definitions 1 and 2 of the paper). These are the ground truth used by
// the Exact baseline, the accuracy metrics, and the tests.

#ifndef SWOPE_CORE_ENTROPY_H_
#define SWOPE_CORE_ENTROPY_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/table/column.h"
#include "src/table/table.h"

namespace swope {

/// H_D(alpha): empirical entropy (bits) of a column over all its rows.
double ExactEntropy(const Column& column);

/// H_D(alpha) restricted to the first `m` rows of the column's stored
/// order; requires m <= column.size(). Used by tests to cross-check the
/// incremental counter.
double ExactEntropyPrefix(const Column& column, uint64_t m);

/// H_D(alpha1, alpha2): empirical joint entropy (bits). Columns must have
/// equal length. Uses a dense joint table when u1*u2 is small and a hash
/// map otherwise.
Result<double> ExactJointEntropy(const Column& a, const Column& b);

/// I_D(alpha1, alpha2) = H(a) + H(b) - H(a, b), clamped to >= 0 against
/// floating-point noise.
Result<double> ExactMutualInformation(const Column& a, const Column& b);

/// Exact entropies for every column of a table.
std::vector<double> ExactEntropies(const Table& table);

/// Exact MI of every column against the target column index (the target's
/// own slot is set to 0). Returns InvalidArgument when `target` is out of
/// range.
Result<std::vector<double>> ExactMutualInformations(const Table& table,
                                                    size_t target);

}  // namespace swope

#endif  // SWOPE_CORE_ENTROPY_H_
