#include "src/core/query_options.h"

#include <algorithm>

namespace swope {

Status QueryOptions::Validate() const {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument("query options: epsilon must be in (0, 1)");
  }
  if (failure_probability < 0.0 || failure_probability >= 1.0) {
    return Status::InvalidArgument(
        "query options: failure probability must be in [0, 1); 0 selects "
        "the 1/N default");
  }
  if (!(growth_factor > 1.0)) {
    return Status::InvalidArgument(
        "query options: growth factor must be > 1");
  }
  if (dense_pair_limit == 0) {
    return Status::InvalidArgument(
        "query options: dense pair limit must be > 0");
  }
  if (sketch_threshold == 0) {
    return Status::InvalidArgument(
        "query options: sketch threshold must be >= 1");
  }
  if (sketch_epsilon < 0.0 || sketch_epsilon >= 1.0) {
    return Status::InvalidArgument(
        "query options: sketch epsilon must be in [0, 1); 0 disables the "
        "sketch path");
  }
  return Status::OK();
}

double QueryOptions::ResolveFailureProbability(uint64_t n) const {
  if (failure_probability > 0.0) return failure_probability;
  const double pf = 1.0 / static_cast<double>(std::max<uint64_t>(1, n));
  // Clamp: tiny tables would otherwise get p_f = 1 (vacuous bounds) and
  // astronomically large tables an effectively-zero budget.
  return std::min(std::max(pf, 1e-12), 0.5);
}

}  // namespace swope
