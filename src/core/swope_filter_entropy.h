// SWOPE-Filtering on empirical entropy (Algorithm 2 of the paper).
//
// Returns an approximate filtering answer per Definition 6: with
// probability >= 1 - p_f, every attribute with H >= (1+eps)*eta is
// returned, no attribute with H < (1-eps)*eta is returned, and attributes
// inside the eps-band around eta may go either way.
//
// Per iteration each undecided attribute is classified by three rules:
//   1. interval width < 2*eps*eta  -> decide by the midpoint estimate
//   2. lower bound >= (1-eps)*eta  -> accept
//   3. upper bound <  (1+eps)*eta  -> reject
// and the sample doubles until no attribute is undecided.

#ifndef SWOPE_CORE_SWOPE_FILTER_ENTROPY_H_
#define SWOPE_CORE_SWOPE_FILTER_ENTROPY_H_

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Runs Algorithm 2 with threshold `eta` (must be > 0). The result lists
/// accepted attributes in ascending column-index order.
Result<FilterResult> SwopeFilterEntropy(const Table& table, double eta,
                                        const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_CORE_SWOPE_FILTER_ENTROPY_H_
