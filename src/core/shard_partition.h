// ShardSlicePartition: routes a permutation slice to row shards.
//
// Each sampling round absorbs the slice order[begin..end) of the row
// permutation. Under sharded storage (src/table/sharded_codes.h) a
// (candidate x shard) task only touches one shard's packed words, so the
// slice is partitioned once per round -- shared by every candidate --
// into per-shard shard-local row lists. Alongside each local row the
// partition keeps the row's position within the slice, which is how the
// MI joint counters line candidate codes up with the round's gathered
// target codes (scorers.cc). Buffers are reused across rounds, so
// steady-state partitioning allocates nothing.
//
// Partitioning only reorders which task gathers which row; reductions
// either merge integer counts in fixed shard order (frequency counters)
// or scatter the gathered codes back into slice order and replay them
// through the serial counting path (joint counters), so answers are
// bitwise invariant to the shard count (docs/SHARDING.md).

#ifndef SWOPE_CORE_SHARD_PARTITION_H_
#define SWOPE_CORE_SHARD_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace swope {

/// One round's slice, partitioned by row shard. Build() then read
/// local_rows(s) / slice_pos(s) per shard.
class ShardSlicePartition {
 public:
  /// Partitions order[begin..end): global row order[begin + i] lands in
  /// shard order[begin + i] / shard_size as local row
  /// order[begin + i] % shard_size with slice position i.
  void Build(const std::vector<uint32_t>& order, uint64_t begin,
             uint64_t end, uint64_t shard_size, size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  /// Length of the partitioned slice (end - begin of the last Build).
  uint64_t slice_size() const { return slice_size_; }
  /// Shard-local row indices of the slice rows routed to shard `s`
  /// (feed to ColumnView::GatherShard).
  const std::vector<uint32_t>& local_rows(size_t s) const {
    return shards_[s].local_rows;
  }
  /// Slice positions (i in [0, end - begin)) aligned with local_rows(s).
  const std::vector<uint32_t>& slice_pos(size_t s) const {
    return shards_[s].slice_pos;
  }

 private:
  struct Shard {
    std::vector<uint32_t> local_rows;
    std::vector<uint32_t> slice_pos;
  };
  std::vector<Shard> shards_;
  uint64_t slice_size_ = 0;
};

}  // namespace swope

#endif  // SWOPE_CORE_SHARD_PARTITION_H_
