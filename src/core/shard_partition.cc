#include "src/core/shard_partition.h"

namespace swope {

void ShardSlicePartition::Build(const std::vector<uint32_t>& order,
                                uint64_t begin, uint64_t end,
                                uint64_t shard_size, size_t num_shards) {
  shards_.resize(num_shards);
  slice_size_ = end - begin;
  for (Shard& shard : shards_) {
    shard.local_rows.clear();
    shard.slice_pos.clear();
  }
  for (uint64_t i = begin; i < end; ++i) {
    const uint32_t row = order[i];
    Shard& shard = shards_[row / shard_size];
    shard.local_rows.push_back(static_cast<uint32_t>(row % shard_size));
    shard.slice_pos.push_back(static_cast<uint32_t>(i - begin));
  }
}

}  // namespace swope
