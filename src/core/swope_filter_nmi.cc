#include "src/core/swope_filter_nmi.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/exec_control.h"
#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/prefix_sampler.h"

namespace swope {

namespace {

struct NmiState {
  size_t column = 0;
  FrequencyCounter marginal{0};
  PairCounter joint{0, 0};
};

struct Interval {
  double lower = 0.0;
  double upper = 0.0;
};

// Same composition as in swope_topk_nmi.cc (kept local: the two files are
// independent translation units and the struct is three lines).
Interval ComposeNmi(const MiInterval& mi, const EntropyInterval& target,
                    const EntropyInterval& candidate) {
  Interval interval;
  const double denom_upper = std::sqrt(target.upper * candidate.upper);
  const double denom_lower = std::sqrt(target.lower * candidate.lower);
  if (denom_upper <= 0.0) return interval;
  interval.lower = std::clamp(mi.lower / denom_upper, 0.0, 1.0);
  interval.upper =
      denom_lower > 0.0
          ? std::clamp(mi.upper / denom_lower, interval.lower, 1.0)
          : 1.0;
  return interval;
}

}  // namespace

Result<FilterResult> SwopeFilterNmi(const Table& table, size_t target,
                                    double eta,
                                    const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  if (!(eta > 0.0) || eta > 1.0) {
    return Status::InvalidArgument("nmi filter: eta must be in (0, 1]");
  }
  const uint64_t n = table.num_rows();
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument("nmi filter: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument("nmi filter: need at least two columns");
  }

  const Column& target_col = table.column(target);
  const double pf = options.ResolveFailureProbability(n);
  const uint64_t m0 =
      options.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options.initial_sample_size))
          : ComputeM0(n, h, pf, table.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  const double p_iter =
      pf / (3.0 * static_cast<double>(i_max) * static_cast<double>(h - 1));

  FilterResult result;
  result.stats.initial_sample_size = m0;

  SWOPE_ASSIGN_OR_RETURN(
      PrefixSampler sampler,
      MakePrefixSampler(static_cast<uint32_t>(n), options));
  FrequencyCounter target_counter(target_col.support());
  std::vector<NmiState> states;
  states.reserve(h - 1);
  for (size_t j = 0; j < h; ++j) {
    if (j == target) continue;
    NmiState state;
    state.column = j;
    state.marginal = FrequencyCounter(table.column(j).support());
    state.joint = PairCounter(target_col.support(),
                              table.column(j).support(),
                              options.dense_pair_limit);
    states.push_back(std::move(state));
  }
  std::vector<size_t> active(states.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;

  uint64_t m = std::min<uint64_t>(m0, n);
  while (!active.empty()) {
    if (options.control != nullptr) {
      SWOPE_RETURN_NOT_OK(options.control->Check());
    }
    ++result.stats.iterations;
    const PrefixSampler::Range range = sampler.GrowTo(m);
    target_counter.AddRows(target_col, sampler.order(), range.begin,
                           range.end);
    const EntropyInterval target_interval =
        MakeEntropyInterval(target_counter.SampleEntropy(),
                            target_col.support(), n, m, p_iter);
    result.stats.cells_scanned +=
        (range.end - range.begin) * (1 + 2 * active.size());

    std::vector<size_t> still_active;
    still_active.reserve(active.size());
    for (size_t idx : active) {
      NmiState& state = states[idx];
      const Column& col = table.column(state.column);
      state.marginal.AddRows(col, sampler.order(), range.begin, range.end);
      state.joint.AddRows(target_col, col, sampler.order(), range.begin,
                          range.end);
      const EntropyInterval marginal_interval = MakeEntropyInterval(
          state.marginal.SampleEntropy(), col.support(), n, m, p_iter);
      const uint64_t u_bar = static_cast<uint64_t>(target_col.support()) *
                             static_cast<uint64_t>(col.support());
      const EntropyInterval joint_interval = MakeEntropyInterval(
          state.joint.SampleJointEntropy(), u_bar, n, m, p_iter);
      const MiInterval mi =
          MakeMiInterval(target_interval, marginal_interval, joint_interval);
      const Interval interval =
          ComposeNmi(mi, target_interval, marginal_interval);

      const double width = interval.upper - interval.lower;
      const double estimate = 0.5 * (interval.lower + interval.upper);
      if (width < 2.0 * options.epsilon * eta) {
        if (estimate >= eta) {
          result.items.push_back({state.column, col.name(), estimate,
                                  interval.lower, interval.upper});
        }
      } else if (interval.lower >= (1.0 - options.epsilon) * eta) {
        result.items.push_back({state.column, col.name(), estimate,
                                interval.lower, interval.upper});
      } else if (interval.upper < (1.0 + options.epsilon) * eta) {
        // rejected
      } else {
        still_active.push_back(idx);
      }
    }
    active = std::move(still_active);

    if (m >= n) break;  // exact bounds classify everything above
    const uint64_t grown = static_cast<uint64_t>(
        std::ceil(static_cast<double>(m) * options.growth_factor));
    m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
  }

  std::sort(result.items.begin(), result.items.end(),
            [](const AttributeScore& a, const AttributeScore& b) {
              return a.index < b.index;
            });
  result.stats.final_sample_size = sampler.consumed();
  result.stats.candidates_remaining = active.size();
  result.stats.exhausted_dataset = (sampler.consumed() >= n);
  return result;
}

}  // namespace swope
