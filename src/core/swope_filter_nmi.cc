// This TU lives in src/core/ and may use the internal driver headers.
#define SWOPE_CORE_INTERNAL

#include "src/core/swope_filter_nmi.h"

#include <utility>

#include "src/core/adaptive_sampling_driver.h"
#include "src/core/scorers.h"
#include "src/core/sketch_estimation.h"

namespace swope {

Result<FilterResult> SwopeFilterNmi(const Table& table, size_t target,
                                    double eta,
                                    const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  SWOPE_RETURN_NOT_OK(ValidateColumnSupports(table, options));
  if (!(eta > 0.0) || eta > 1.0) {
    return Status::InvalidArgument("nmi filter: eta must be in (0, 1]");
  }
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument("nmi filter: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument("nmi filter: need at least two columns");
  }

  NmiScorer scorer(table, target, options);
  FilterPolicy policy(table, eta, options.epsilon, options.memory);
  AdaptiveSamplingDriver driver(table, options);
  SWOPE_ASSIGN_OR_RETURN(AdaptiveSamplingDriver::Output output,
                         driver.Run(scorer, policy));
  return FilterResult{std::move(output.items), output.stats};
}

}  // namespace swope
