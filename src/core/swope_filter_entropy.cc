// This TU lives in src/core/ and may use the internal driver headers.
#define SWOPE_CORE_INTERNAL

#include "src/core/swope_filter_entropy.h"

#include <utility>

#include "src/core/adaptive_sampling_driver.h"
#include "src/core/scorers.h"
#include "src/core/sketch_estimation.h"

namespace swope {

Result<FilterResult> SwopeFilterEntropy(const Table& table, double eta,
                                        const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  SWOPE_RETURN_NOT_OK(ValidateColumnSupports(table, options));
  if (!(eta > 0.0)) {
    return Status::InvalidArgument("filter: eta must be > 0");
  }
  const size_t h = table.num_columns();
  if (h == 0) return Status::InvalidArgument("filter: table has no columns");

  EntropyScorer scorer(table, options);
  FilterPolicy policy(table, eta, options.epsilon, options.memory);
  AdaptiveSamplingDriver driver(table, options);
  SWOPE_ASSIGN_OR_RETURN(AdaptiveSamplingDriver::Output output,
                         driver.Run(scorer, policy));
  return FilterResult{std::move(output.items), output.stats};
}

}  // namespace swope
