#include "src/core/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/math.h"

namespace swope {

double EntropySwapSensitivity(uint64_t m) {
  if (m < 2) return std::numeric_limits<double>::infinity();
  const double md = static_cast<double>(m);
  return std::log2(md / (md - 1.0)) + std::log2(md - 1.0) / md;
}

double PermutationLambda(uint64_t n, uint64_t m, double p) {
  if (m >= n) return 0.0;
  if (m < 2 || !(p > 0.0) || !(p < 1.0)) {
    return std::numeric_limits<double>::infinity();
  }
  const double beta = EntropySwapSensitivity(m);
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double max_side = static_cast<double>(std::max(m, n - m));
  const double numerator = md * (nd - md) * std::log(2.0 / p);
  const double denominator =
      2.0 * (nd - 0.5) * (1.0 - 1.0 / (2.0 * max_side));
  return beta * std::sqrt(numerator / denominator);
}

double BiasBound(uint32_t support, uint64_t n, uint64_t m) {
  if (m >= n || n <= 1 || m == 0) {
    // m == 0 with n > 0 would make the ratio infinite; the interval clamp
    // to [0, log2(u)] below renders the bound vacuous anyway, and the
    // algorithms never evaluate bounds before sampling.
    return m == 0 && n > m ? std::numeric_limits<double>::infinity() : 0.0;
  }
  const double u = static_cast<double>(support);
  const double nd = static_cast<double>(n);
  const double md = static_cast<double>(m);
  return std::log2(1.0 + (u - 1.0) * (nd - md) / (md * (nd - 1.0)));
}

EntropyInterval MakeEntropyInterval(double sample_entropy,
                                    uint64_t support_cap, uint64_t n,
                                    uint64_t m, double p) {
  EntropyInterval interval;
  interval.sample_entropy = sample_entropy;
  interval.lambda = PermutationLambda(n, m, p);
  // At most n distinct values can appear in n records, so the entropy of
  // any attribute (or attribute pair) is capped by log2(min(u, n)).
  const uint64_t effective_support = std::max<uint64_t>(
      1, std::min<uint64_t>(support_cap, std::max<uint64_t>(n, 1)));
  interval.bias =
      BiasBound(static_cast<uint32_t>(
                    std::min<uint64_t>(effective_support, 0xffffffffULL)),
                n, m);
  const double cap = std::log2(static_cast<double>(effective_support));
  interval.lower = Clamp(sample_entropy - interval.lambda, 0.0, cap);
  const double raw_upper = sample_entropy + interval.lambda + interval.bias;
  interval.upper = Clamp(raw_upper, interval.lower, cap);
  return interval;
}

MiInterval MakeMiInterval(const EntropyInterval& target,
                          const EntropyInterval& candidate,
                          const EntropyInterval& joint) {
  MiInterval interval;
  const double raw_lower = target.lower + candidate.lower - joint.upper;
  const double raw_upper = target.upper + candidate.upper - joint.lower;
  interval.lower = std::max(0.0, raw_lower);
  interval.upper = std::max(interval.lower, raw_upper);
  interval.slack = 2.0 * target.lambda + 2.0 * candidate.lambda +
                   2.0 * joint.lambda + target.bias + candidate.bias +
                   joint.bias;
  return interval;
}

uint64_t ComputeM0(uint64_t n, size_t h, double failure_probability,
                   uint32_t max_support) {
  if (n == 0) return 0;
  const double nd = static_cast<double>(n);
  const double log2n = std::max(1.0, std::log2(nd));
  const double hd = std::max<double>(1.0, static_cast<double>(h));
  const double pf = Clamp(failure_probability, 1e-300, 0.5);
  const double log2u =
      std::max(1.0, std::log2(static_cast<double>(std::max(2U, max_support))));
  const double m0 =
      std::log(hd * log2n / pf) * log2n * log2n / (log2u * log2u);
  const uint64_t clamped =
      static_cast<uint64_t>(std::llround(std::max(m0, 0.0)));
  return std::min<uint64_t>(n, std::max<uint64_t>(kMinSampleSize, clamped));
}

uint32_t MaxIterations(uint64_t n, uint64_t m0) {
  if (m0 == 0 || m0 >= n) return 1;
  const double ratio = static_cast<double>(n) / static_cast<double>(m0);
  return static_cast<uint32_t>(std::ceil(std::log2(ratio))) + 1;
}

}  // namespace swope
