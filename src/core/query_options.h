// Options shared by the four SWOPE query algorithms and the sampling
// baselines.

#ifndef SWOPE_CORE_QUERY_OPTIONS_H_
#define SWOPE_CORE_QUERY_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "src/common/status.h"

namespace swope {

class CodeScratchArena;
struct ExecControl;
class Histogram;
class QueryTrace;
class StageProfiler;
class ThreadPool;

/// Tunable parameters of a sampling query. Defaults follow the paper's
/// experimental settings where one exists.
struct QueryOptions {
  /// Relative error parameter (Definitions 5 and 6); must be in (0, 1).
  /// Paper defaults: 0.1 for entropy top-k, 0.05 for entropy filtering,
  /// 0.5 for both MI queries.
  double epsilon = 0.1;

  /// Overall failure probability p_f. 0 means "use the paper's default
  /// p_f = 1/N", resolved against the queried table.
  double failure_probability = 0.0;

  /// Seed for the row permutation. Queries with equal seeds over the same
  /// table see the same sample sequence.
  uint64_t seed = 42;

  /// When > 0, overrides the paper's M0 policy with a fixed initial sample
  /// size (used by the ablation benches).
  uint64_t initial_sample_size = 0;

  /// Sample-size growth factor per iteration; the paper doubles.
  /// Must be > 1.
  double growth_factor = 2.0;

  /// Maximum dense joint-count table size (cells) before PairCounter falls
  /// back to hashing. MI queries only.
  uint64_t dense_pair_limit = 1ULL << 20;

  /// Columns whose support exceeds this take the sketch-backed frequency
  /// path when sketch_epsilon > 0, and are rejected with InvalidArgument
  /// when it is 0 (the paper's "eliminate columns with a support size
  /// larger than 1000" preprocessing, made explicit). See docs/SKETCH.md.
  uint32_t sketch_threshold = 1000;

  /// Count-min sketch additive-error target for the sketch path:
  /// frequency overcounts stay below sketch_epsilon * M with probability
  /// 1 - kSketchDelta. 0 (the default) disables sketches entirely; must
  /// otherwise be in (0, 1).
  double sketch_epsilon = 0.0;

  /// When true, sample the stored row order directly instead of drawing a
  /// fresh permutation -- the paper's "sequential sampling" on columnar
  /// storage (Section 6.1). Sound whenever the stored order is
  /// exchangeable (shuffled once offline, or generated i.i.d.); much
  /// faster because batches read columns sequentially. The benches enable
  /// this, matching the paper's implementation.
  bool sequential_sampling = false;

  /// Engine hook: a pre-shuffled row order to sample from, shared across
  /// concurrent queries over the same table (sound per Section 6.1: one
  /// exchangeable order serves every query). Must be a permutation of
  /// [0, N) for the queried table; when null the driver draws its own
  /// permutation from `seed`. Ignored by ResultCache canonicalization --
  /// the engine only injects an order equal to what `seed` would produce.
  std::shared_ptr<const std::vector<uint32_t>> shared_order;

  /// Engine hook: cooperative cancellation / deadline, polled at every
  /// sample-doubling round. Not owned; may be null. The caller keeps the
  /// pointee alive for the duration of the query.
  const ExecControl* control = nullptr;

  /// Intra-query parallelism: when non-null, the driver decomposes the
  /// counter-update phase of each round into (candidate x shard) tasks
  /// and fans them out across this pool. Answers are byte-identical to
  /// the serial path at any thread count and any shard count (shard
  /// tasks count into private deltas merged in fixed shard order, and
  /// every reduction runs serially in fixed candidate order; see
  /// docs/CORE.md and docs/SHARDING.md), so this is ignored by
  /// ResultCache canonicalization. Not owned; may be null. The caller
  /// keeps the pool alive for the duration of the query.
  ThreadPool* pool = nullptr;

  /// Observability hook: when non-null, the driver records each shard
  /// task's wall-clock milliseconds into it (the engine wires this to
  /// the swope_engine_shard_task_ms histogram). Affects no answer bytes,
  /// so it is ignored by ResultCache canonicalization. Not owned; may be
  /// null. The caller keeps the pointee alive for the query's duration.
  Histogram* shard_task_latency = nullptr;

  /// Observability hook: when non-null, the driver records one RoundTrace
  /// per sampling round into it (src/obs/query_trace.h). Every field
  /// except wall time is deterministic for a given (table, spec, seed),
  /// so it is ignored by ResultCache canonicalization. When null (the
  /// default) the driver's only extra work is one branch per round. Not
  /// owned; the caller keeps the pointee alive for the query's duration.
  QueryTrace* trace = nullptr;

  /// Engine hook: backing store for the query's transient state -- every
  /// per-candidate counter, interval table, decode slice, and answer
  /// vector allocates from it. The engine passes the pooled per-query
  /// Arena (src/common/arena.h), whose rewind-and-reuse cycle makes
  /// steady-state queries heap-allocation-free
  /// (tests/alloc_regression_test.cc). Null (the default) means the
  /// global heap; results are byte-identical either way, so this is
  /// ignored by ResultCache canonicalization. Not owned; the caller must
  /// not rewind the arena before the returned items are consumed.
  std::pmr::memory_resource* memory = nullptr;

  /// Engine hook: shared pool of decode buffers (src/core/code_scratch.h).
  /// When non-null, scorers lease their gather scratch from it instead of
  /// a query-local pool, so buffer capacity persists across queries.
  /// Affects no answer bytes (buffers are fully overwritten before every
  /// read); ignored by ResultCache canonicalization. Not owned; may be
  /// null.
  CodeScratchArena* scratch = nullptr;

  /// Observability hook: when non-null, the driver and scorers attribute
  /// CPU time to the fixed stage taxonomy (src/obs/profiler.h) at
  /// (candidate x shard)-task granularity -- gather, count, shard-merge,
  /// replay, interval-update, finalize. Affects no answer bytes, so it
  /// is ignored by ResultCache canonicalization. When null (the default)
  /// each would-be stage timer costs one branch and no clock read. Not
  /// owned; the caller keeps the pointee alive for the query's duration.
  StageProfiler* profiler = nullptr;

  /// Validates ranges; returns InvalidArgument with a description on
  /// failure.
  Status Validate() const;

  /// Resolves failure_probability against a table of n rows (paper default
  /// p_f = 1/N, floored to keep ln(2/p) finite).
  double ResolveFailureProbability(uint64_t n) const;
};

}  // namespace swope

#endif  // SWOPE_CORE_QUERY_OPTIONS_H_
