// Result types returned by the query algorithms (SWOPE and baselines).

#ifndef SWOPE_CORE_QUERY_RESULT_H_
#define SWOPE_CORE_QUERY_RESULT_H_

#include <algorithm>
#include <cstdint>
#include <memory_resource>
#include <string>
#include <vector>

namespace swope {

/// One attribute in a query answer, with the bound state at termination.
struct AttributeScore {
  /// Column index in the queried table.
  size_t index = 0;
  /// Column name.
  std::string name;
  /// Point estimate of the score (midpoint of the confidence interval;
  /// exact value for the Exact baseline and for M = N terminations).
  double estimate = 0.0;
  /// Confidence interval at termination.
  double lower = 0.0;
  double upper = 0.0;
};

/// Cost accounting for one query execution.
struct QueryStats {
  /// Sample size M when the algorithm stopped.
  uint64_t final_sample_size = 0;
  /// Initial sample size M0 used.
  uint64_t initial_sample_size = 0;
  /// Number of bound-evaluation iterations executed.
  uint32_t iterations = 0;
  /// Total counter updates performed (one per attribute value or value
  /// pair absorbed); the algorithm's dominant cost, comparable across
  /// SWOPE / baselines / Exact.
  uint64_t cells_scanned = 0;
  /// Candidates still undecided at termination (0 for filtering queries
  /// that classified everything).
  size_t candidates_remaining = 0;
  /// Candidates scored through the sketch-backed frequency path (support
  /// above QueryOptions::sketch_threshold with sketches enabled); 0 means
  /// the query ran entirely on exact counters. See docs/SKETCH.md.
  size_t sketch_candidates = 0;
  /// True when the algorithm had to sample every record (M reached N).
  bool exhausted_dataset = false;
};

/// Answer to a top-k query: `items` sorted by descending score ordering
/// criterion (upper bound for SWOPE, exact score for baselines).
///
/// `items` is a pmr vector so SWOPE queries can assemble the answer in
/// the caller's QueryOptions::memory resource (null memory behaves like
/// a plain std::vector). An arena-backed result is valid only until the
/// arena rewinds; copy it (copies land on the global heap) to keep it
/// longer -- the engine's ResultCache does exactly that.
struct TopKResult {
  std::pmr::vector<AttributeScore> items;
  QueryStats stats;
};

/// Answer to a filtering query: `items` in ascending column-index order.
/// Memory contract as TopKResult.
struct FilterResult {
  std::pmr::vector<AttributeScore> items;
  QueryStats stats;

  /// True when column `index` is in the answer set. Binary search over
  /// the ascending-index invariant above.
  bool Contains(size_t index) const {
    auto it = std::lower_bound(
        items.begin(), items.end(), index,
        [](const AttributeScore& item, size_t i) { return item.index < i; });
    return it != items.end() && it->index == index;
  }
};

}  // namespace swope

#endif  // SWOPE_CORE_QUERY_RESULT_H_
