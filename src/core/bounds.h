// Concentration and bias bounds for sampling without replacement
// (Lemmas 1-3 of the paper).
//
// For a sample S of size M drawn without replacement from the N records of
// D (equivalently, the first M entries of a random permutation):
//
//  * PermutationLambda computes the high-probability deviation half-width
//    lambda = beta * sqrt( M(N-M) ln(2/p) /
//                          (2(N-1/2)(1 - 1/(2 max(M, N-M)))) )
//    with beta = log2(M/(M-1)) + log2(M-1)/M, from the El-Yaniv & Pechyony
//    permutation bound (Lemma 2) applied to the (M,N)-symmetric sample
//    entropy (Lemma 3). lambda is attribute-independent.
//
//  * BiasBound computes the negative-bias term of Lemma 1:
//    b(alpha) = log2(1 + (u_alpha - 1)(N - M) / (M (N - 1))),
//    which upper-bounds H_D(alpha) - E[H_S(alpha)] >= 0.
//
// Together: H_S - lambda <= H_D <= H_S + lambda + b with probability
// >= 1 - p. Both vanish at M = N (the sample is the dataset).

#ifndef SWOPE_CORE_BOUNDS_H_
#define SWOPE_CORE_BOUNDS_H_

#include <cstdint>

#include "src/common/result.h"

namespace swope {

/// beta(M) = log2(M/(M-1)) + log2(M-1)/M, the per-swap sensitivity bound of
/// the sample entropy. Requires M >= 2 (returns +inf for M < 2, making the
/// interval vacuous, which the clamps below absorb).
double EntropySwapSensitivity(uint64_t m);

/// The deviation half-width lambda for sample size m out of n records at
/// failure probability p (per side-pair). Returns 0 when m >= n and +inf
/// when m < 2 or p is not in (0, 1).
double PermutationLambda(uint64_t n, uint64_t m, double p);

/// The Lemma 1 bias bound b for an attribute with support size u. Returns 0
/// when m >= n or n <= 1.
double BiasBound(uint32_t support, uint64_t n, uint64_t m);

/// A high-probability confidence interval for an empirical entropy, plus
/// the raw ingredients the stopping rules need.
struct EntropyInterval {
  double lower = 0.0;      ///< H lower bound, clamped to >= 0
  double upper = 0.0;      ///< H upper bound, clamped to <= log2(support)
  double lambda = 0.0;     ///< deviation half-width used
  double bias = 0.0;       ///< bias term b(alpha) used
  double sample_entropy = 0.0;  ///< H_S(alpha)

  /// Midpoint estimate H_hat = (lower + upper) / 2.
  double Estimate() const { return 0.5 * (lower + upper); }
  /// Interval width upper - lower.
  double Width() const { return upper - lower; }
};

/// Builds the Lemma 3 interval for one attribute.
/// `support_cap` bounds the true entropy from above (log2 of it clips the
/// upper bound); pass the attribute's support u_alpha, or for joint
/// entropies the bound u_bar = u1*u2 (clamped internally to at most n, the
/// number of records, since at most n distinct values can occur).
EntropyInterval MakeEntropyInterval(double sample_entropy, uint64_t support_cap,
                                    uint64_t n, uint64_t m, double p);

/// A confidence interval for a mutual information score.
struct MiInterval {
  double lower = 0.0;  ///< clamped to >= 0 (MI is non-negative)
  double upper = 0.0;
  /// Total interval slack 6*lambda + b(a_t) + b(a) + b(a_t,a) used by the
  /// Algorithm 3 stopping rule (b' in the paper).
  double slack = 0.0;

  double Estimate() const { return 0.5 * (lower + upper); }
  double Width() const { return upper - lower; }
};

/// Composes the MI interval I = H(t) + H(a) - H(t,a) from the three
/// entropy intervals (Section 4.1):
///   I_lower = H_lower(t) + H_lower(a) - H_upper(t,a)
///   I_upper = H_upper(t) + H_upper(a) - H_lower(t,a)
MiInterval MakeMiInterval(const EntropyInterval& target,
                          const EntropyInterval& candidate,
                          const EntropyInterval& joint);

/// The paper's initial sample size policy:
///   M0 = ln(h * log2(N) / p_f) * log2(N)^2 / log2(u_max)^2,
/// the Theorem 2 lower bound evaluated at the largest possible k-th score
/// (log2 u_max) and epsilon = 1. Clamped into [kMinSampleSize, N].
uint64_t ComputeM0(uint64_t n, size_t h, double failure_probability,
                   uint32_t max_support);

/// Minimum sample size ever used (keeps beta(M) finite and the schedule
/// sane).
inline constexpr uint64_t kMinSampleSize = 16;

/// i_max = ceil(log2(N / M0)) + 1: the maximum number of doubling
/// iterations, used to split the failure budget.
uint32_t MaxIterations(uint64_t n, uint64_t m0);

}  // namespace swope

#endif  // SWOPE_CORE_BOUNDS_H_
