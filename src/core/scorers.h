// The three Scorer implementations behind the SWOPE entry points
// (internal to src/core/ — see adaptive_sampling_driver.h).
//
//   EntropyScorer  one FrequencyCounter per column; Lemma 3 intervals.
//   MiScorer       a shared target counter plus, per candidate, a marginal
//                  FrequencyCounter and a joint PairCounter; Section 4.1
//                  interval composition.
//   NmiScorer      MiScorer's counters, with the MI interval normalized by
//                  sqrt(H(t) * H(a)) bounds.
//
// Columns whose support exceeds QueryOptions::sketch_threshold take the
// sketch-backed path when sketches are enabled: the exact counter is
// replaced by a SketchFrequencyProvider and the interval by
// MakeSketchEntropyInterval (src/core/sketch_estimation.h). The split is
// per candidate, so one query can mix exact and sketched columns; MI/NMI
// joints go through a sketch whenever either side does. docs/SKETCH.md
// covers the estimator.
//
// This header is internal: outside src/core/, include the public
// swope_*.h entry points instead. src/core/ TUs opt in by defining
// SWOPE_CORE_INTERNAL before their includes; everyone else hits the
// #error below.

#ifndef SWOPE_CORE_SCORERS_H_
#define SWOPE_CORE_SCORERS_H_

#ifndef SWOPE_CORE_INTERNAL
#error "src/core/scorers.h is internal to src/core/; include the public swope_topk_*/swope_filter_* headers instead"
#endif

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "src/core/adaptive_sampling_driver.h"
#include "src/core/bounds.h"
#include "src/core/code_scratch.h"
#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/query_options.h"
#include "src/core/shard_partition.h"
#include "src/core/sketch_estimation.h"
#include "src/sketch/frequency_provider.h"
#include "src/table/column_view.h"
#include "src/table/table.h"

namespace swope {

/// Scores every column of the table by its empirical entropy.
class EntropyScorer : public Scorer {
 public:
  EntropyScorer(const Table& table, const QueryOptions& options);

  double bounds_per_candidate() const override { return 1.0; }
  uint64_t CellsPerRow(size_t active) const override { return active; }
  void UpdateCandidate(size_t c, const std::vector<uint32_t>& order,
                       uint64_t begin, uint64_t end, uint64_t m) override;
  /// Exact candidates shard; sketched ones are order-dependent and don't.
  bool CandidateShardable(size_t c) const override {
    return sketches_[c] == nullptr;
  }
  void PrepareSharding(size_t num_shards) override;
  void UpdateCandidateShard(size_t c, size_t shard,
                            const ShardSlicePartition& partition) override;
  void FinalizeCandidate(size_t c, const ShardSlicePartition& partition,
                         uint64_t m) override;
  /// Algorithm 1 line 8: (kth_upper - 2*lambda - b_max) / kth_upper
  /// >= 1 - epsilon, with b_max the largest bias among current top-k
  /// members.
  bool TopKShouldStop(const std::pmr::vector<size_t>& active,
                      double kth_upper, uint64_t m,
                      double epsilon) const override;

 private:
  const Table& table_;
  /// Stage-attribution hook (QueryOptions::profiler); null when off.
  StageProfiler* const profiler_;
  std::pmr::vector<ColumnView> views_;
  // Exactly one of counters_[c] (sized 0 when sketched) and sketches_[c]
  // (null when exact) is live per candidate.
  std::pmr::vector<FrequencyCounter> counters_;
  std::pmr::vector<std::unique_ptr<SketchFrequencyProvider>> sketches_;
  // Per-candidate per-shard delta counters for the shard-decomposed
  // rounds (empty for sketched candidates); sized by PrepareSharding.
  std::pmr::vector<std::pmr::vector<FrequencyCounter>> deltas_;
  // Decode buffers, recycled across rounds and shared by the pool
  // workers: the engine-pooled arena (QueryOptions::scratch) when
  // provided, else a query-local fallback.
  CodeScratchArena own_scratch_;
  CodeScratchArena& scratch_;
};

/// Scores every non-target column by its mutual information with the
/// target column.
class MiScorer : public Scorer {
 public:
  MiScorer(const Table& table, size_t target, const QueryOptions& options);

  double bounds_per_candidate() const override { return 3.0; }
  uint64_t CellsPerRow(size_t active) const override {
    // Target marginal plus, per candidate, one marginal and one joint
    // update per row.
    return 1 + 2 * active;
  }
  void BeginRound(const std::vector<uint32_t>& order, uint64_t begin,
                  uint64_t end, uint64_t m) override;
  void UpdateCandidate(size_t c, const std::vector<uint32_t>& order,
                       uint64_t begin, uint64_t end, uint64_t m) override;
  /// Shardable when both the marginal and the joint counters are exact;
  /// any sketched side pins the candidate to whole-slice updates.
  bool CandidateShardable(size_t c) const override {
    return counters_[c].marginal_sketch == nullptr &&
           counters_[c].joint_sketch == nullptr;
  }
  void PrepareSharding(size_t num_shards) override;
  void UpdateCandidateShard(size_t c, size_t shard,
                            const ShardSlicePartition& partition) override;
  void FinalizeCandidate(size_t c, const ShardSlicePartition& partition,
                         uint64_t m) override;
  /// Algorithm 3: (kth_upper - slack_max) / kth_upper >= 1 - epsilon,
  /// with slack_max the largest b' among current top-k members.
  bool TopKShouldStop(const std::pmr::vector<size_t>& active,
                      double kth_upper, uint64_t m,
                      double epsilon) const override;

 protected:
  /// Folds order[begin..end) into candidate `c`'s marginal and joint
  /// counters and returns the composed MI interval at sample size `m`;
  /// also reports the candidate's marginal entropy interval (the NMI
  /// normalization needs it).
  MiInterval UpdateMi(size_t c, const std::vector<uint32_t>& order,
                      uint64_t begin, uint64_t end, uint64_t m,
                      EntropyInterval* marginal_out);

  const EntropyInterval& target_interval() const { return target_interval_; }

  const Table& table_;
  const Column& target_col_;
  /// Stage-attribution hook (QueryOptions::profiler); null when off.
  /// Protected so NmiScorer can attribute its composition step too.
  StageProfiler* const profiler_;

 private:
  struct CandidateCounters {
    /// Every container allocates from `memory` so an arena-backed query
    /// builds its whole candidate state in the arena.
    explicit CandidateCounters(std::pmr::memory_resource* memory)
        : marginal(0, memory),
          joint(0, 0, 1ULL << 20, memory),
          shard_codes(memory),
          replay(memory) {}

    FrequencyCounter marginal;
    PairCounter joint;
    // Sketch-path replacements; null means the exact counter above is
    // live. The joint sketch is keyed (target_code << 32) | code and is
    // engaged whenever either marginal is sketched.
    std::unique_ptr<SketchFrequencyProvider> marginal_sketch;
    std::unique_ptr<SketchFrequencyProvider> joint_sketch;
    // Shard-task scratch (empty on the sketch path; sized by
    // PrepareSharding). Shard tasks only *gather*: shard_codes[s] holds
    // the candidate codes of the rows routed to shard s, aligned with
    // the partition's slice_pos(s). FinalizeCandidate scatters them back
    // into `replay` in slice order and feeds the serial AddCodes path,
    // so the counters -- including the joint counter's order-sensitive
    // running x*log2(x) sum -- evolve bit-identically to a serial round
    // (docs/SHARDING.md).
    std::pmr::vector<std::pmr::vector<ValueCode>> shard_codes;
    std::pmr::vector<ValueCode> replay;
  };

  ColumnView target_view_;
  std::pmr::vector<ColumnView> views_;
  FrequencyCounter target_counter_;
  std::unique_ptr<SketchFrequencyProvider> target_sketch_;
  EntropyInterval target_interval_;
  // The round's gathered target slice: target_slice_[i] is the target
  // code at order[begin + i]. Written once per round in BeginRound
  // (serial), read by every UpdateCandidate (the pool's fork provides the
  // happens-before edge).
  std::pmr::vector<ValueCode> target_slice_;
  std::pmr::vector<CandidateCounters> counters_;
  // See EntropyScorer::scratch_.
  CodeScratchArena own_scratch_;
  CodeScratchArena& scratch_;
};

/// Scores every non-target column by its normalized mutual information
/// NMI(t, a) = I(t; a) / sqrt(H(t) * H(a)) with the target column.
class NmiScorer : public MiScorer {
 public:
  NmiScorer(const Table& table, size_t target, const QueryOptions& options)
      : MiScorer(table, target, options) {}

  void UpdateCandidate(size_t c, const std::vector<uint32_t>& order,
                       uint64_t begin, uint64_t end, uint64_t m) override;
  /// Generalized relative-width rule: every current top-k member must
  /// satisfy upper - lower <= epsilon * upper.
  bool TopKShouldStop(const std::pmr::vector<size_t>& active,
                      double kth_upper, uint64_t m,
                      double epsilon) const override;
};

}  // namespace swope

#endif  // SWOPE_CORE_SCORERS_H_
