// This TU lives in src/core/ and may use the internal driver headers.
#define SWOPE_CORE_INTERNAL

#include "src/core/swope_topk_nmi.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/core/adaptive_sampling_driver.h"
#include "src/core/entropy.h"
#include "src/core/scorers.h"
#include "src/core/sketch_estimation.h"

namespace swope {

Result<double> ExactNormalizedMi(const Column& a, const Column& b) {
  auto mi = ExactMutualInformation(a, b);
  if (!mi.ok()) return mi.status();
  const double denom = std::sqrt(ExactEntropy(a) * ExactEntropy(b));
  if (denom <= 0.0) return 0.0;
  return std::clamp(*mi / denom, 0.0, 1.0);
}

Result<std::vector<double>> ExactNormalizedMis(const Table& table,
                                               size_t target) {
  if (target >= table.num_columns()) {
    return Status::InvalidArgument("exact NMI: target index out of range");
  }
  std::vector<double> scores(table.num_columns(), 0.0);
  for (size_t j = 0; j < table.num_columns(); ++j) {
    if (j == target) continue;
    auto nmi = ExactNormalizedMi(table.column(target), table.column(j));
    if (!nmi.ok()) return nmi.status();
    scores[j] = *nmi;
  }
  return scores;
}

Result<TopKResult> SwopeTopKNmi(const Table& table, size_t target, size_t k,
                                const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  SWOPE_RETURN_NOT_OK(ValidateColumnSupports(table, options));
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument("nmi top-k: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument("nmi top-k: need at least two columns");
  }
  if (k == 0) return Status::InvalidArgument("nmi top-k: k must be >= 1");
  k = std::min(k, h - 1);

  NmiScorer scorer(table, target, options);
  TopKPolicy policy(table, k, options.epsilon, options.memory);
  AdaptiveSamplingDriver driver(table, options);
  SWOPE_ASSIGN_OR_RETURN(AdaptiveSamplingDriver::Output output,
                         driver.Run(scorer, policy));
  return TopKResult{std::move(output.items), output.stats};
}

}  // namespace swope
