#include "src/core/swope_topk_nmi.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/exec_control.h"
#include "src/core/entropy.h"
#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/prefix_sampler.h"

namespace swope {

namespace {

struct NmiInterval {
  double lower = 0.0;
  double upper = 0.0;
};

// Composes the NMI interval from the MI interval and the two marginal
// entropy intervals. When a marginal lower bound is 0 the upper bound is
// vacuous (1); when a marginal upper bound is 0 the attribute is constant
// and NMI is 0.
NmiInterval MakeNmiInterval(const MiInterval& mi,
                            const EntropyInterval& target,
                            const EntropyInterval& candidate) {
  NmiInterval interval;
  const double denom_upper = std::sqrt(target.upper * candidate.upper);
  const double denom_lower = std::sqrt(target.lower * candidate.lower);
  if (denom_upper <= 0.0) return interval;  // a constant attribute: NMI = 0
  interval.lower = std::clamp(mi.lower / denom_upper, 0.0, 1.0);
  interval.upper = denom_lower > 0.0
                       ? std::clamp(mi.upper / denom_lower, interval.lower,
                                    1.0)
                       : 1.0;
  return interval;
}

struct NmiCandidate {
  size_t column = 0;
  FrequencyCounter marginal{0};
  PairCounter joint{0, 0};
  NmiInterval interval;
};

}  // namespace

Result<double> ExactNormalizedMi(const Column& a, const Column& b) {
  auto mi = ExactMutualInformation(a, b);
  if (!mi.ok()) return mi.status();
  const double denom = std::sqrt(ExactEntropy(a) * ExactEntropy(b));
  if (denom <= 0.0) return 0.0;
  return std::clamp(*mi / denom, 0.0, 1.0);
}

Result<std::vector<double>> ExactNormalizedMis(const Table& table,
                                               size_t target) {
  if (target >= table.num_columns()) {
    return Status::InvalidArgument("exact NMI: target index out of range");
  }
  std::vector<double> scores(table.num_columns(), 0.0);
  for (size_t j = 0; j < table.num_columns(); ++j) {
    if (j == target) continue;
    auto nmi = ExactNormalizedMi(table.column(target), table.column(j));
    if (!nmi.ok()) return nmi.status();
    scores[j] = *nmi;
  }
  return scores;
}

Result<TopKResult> SwopeTopKNmi(const Table& table, size_t target, size_t k,
                                const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  const uint64_t n = table.num_rows();
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument("nmi top-k: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument("nmi top-k: need at least two columns");
  }
  if (k == 0) return Status::InvalidArgument("nmi top-k: k must be >= 1");
  k = std::min(k, h - 1);

  const Column& target_col = table.column(target);
  const double pf = options.ResolveFailureProbability(n);
  const uint64_t m0 =
      options.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options.initial_sample_size))
          : ComputeM0(n, h, pf, table.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  const double p_iter =
      pf / (3.0 * static_cast<double>(i_max) * static_cast<double>(h - 1));

  TopKResult result;
  result.stats.initial_sample_size = m0;

  SWOPE_ASSIGN_OR_RETURN(
      PrefixSampler sampler,
      MakePrefixSampler(static_cast<uint32_t>(n), options));
  FrequencyCounter target_counter(target_col.support());
  std::vector<NmiCandidate> candidates;
  candidates.reserve(h - 1);
  for (size_t j = 0; j < h; ++j) {
    if (j == target) continue;
    NmiCandidate c;
    c.column = j;
    c.marginal = FrequencyCounter(table.column(j).support());
    c.joint = PairCounter(target_col.support(), table.column(j).support(),
                          options.dense_pair_limit);
    candidates.push_back(std::move(c));
  }
  std::vector<size_t> active(candidates.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;

  auto finalize = [&](uint64_t m) {
    std::vector<size_t> order = active;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidates[a].interval.upper != candidates[b].interval.upper) {
        return candidates[a].interval.upper > candidates[b].interval.upper;
      }
      return candidates[a].column < candidates[b].column;
    });
    order.resize(std::min(order.size(), k));
    for (size_t idx : order) {
      const NmiCandidate& c = candidates[idx];
      result.items.push_back(
          {c.column, table.column(c.column).name(),
           0.5 * (c.interval.lower + c.interval.upper), c.interval.lower,
           c.interval.upper});
    }
    result.stats.final_sample_size = m;
    result.stats.candidates_remaining = active.size();
    result.stats.exhausted_dataset = (m >= n);
  };

  uint64_t m = std::min<uint64_t>(m0, n);
  for (;;) {
    if (options.control != nullptr) {
      SWOPE_RETURN_NOT_OK(options.control->Check());
    }
    ++result.stats.iterations;
    const PrefixSampler::Range range = sampler.GrowTo(m);
    target_counter.AddRows(target_col, sampler.order(), range.begin,
                           range.end);
    const EntropyInterval target_interval =
        MakeEntropyInterval(target_counter.SampleEntropy(),
                            target_col.support(), n, m, p_iter);
    for (size_t idx : active) {
      NmiCandidate& c = candidates[idx];
      const Column& col = table.column(c.column);
      c.marginal.AddRows(col, sampler.order(), range.begin, range.end);
      c.joint.AddRows(target_col, col, sampler.order(), range.begin,
                      range.end);
      const EntropyInterval marginal_interval = MakeEntropyInterval(
          c.marginal.SampleEntropy(), col.support(), n, m, p_iter);
      const uint64_t u_bar = static_cast<uint64_t>(target_col.support()) *
                             static_cast<uint64_t>(col.support());
      const EntropyInterval joint_interval = MakeEntropyInterval(
          c.joint.SampleJointEntropy(), u_bar, n, m, p_iter);
      const MiInterval mi =
          MakeMiInterval(target_interval, marginal_interval, joint_interval);
      c.interval = MakeNmiInterval(mi, target_interval, marginal_interval);
    }
    result.stats.cells_scanned +=
        (range.end - range.begin) * (1 + 2 * active.size());

    // Current top-k set by upper bound.
    std::vector<double> uppers;
    uppers.reserve(active.size());
    for (size_t idx : active) uppers.push_back(candidates[idx].interval.upper);
    std::nth_element(uppers.begin(), uppers.begin() + (k - 1), uppers.end(),
                     std::greater<double>());
    const double kth_upper = uppers[k - 1];

    // Generalized relative-width stopping rule: every member of the
    // current top-k set must satisfy upper - lower <= eps * upper.
    bool stop = true;
    if (kth_upper > 0.0) {
      for (size_t idx : active) {
        const NmiInterval& interval = candidates[idx].interval;
        if (interval.upper >= kth_upper &&
            interval.upper - interval.lower >
                options.epsilon * interval.upper) {
          stop = false;
          break;
        }
      }
    }
    if (stop || m >= n) {
      finalize(m);
      return result;
    }

    std::vector<double> lowers;
    lowers.reserve(active.size());
    for (size_t idx : active) lowers.push_back(candidates[idx].interval.lower);
    std::nth_element(lowers.begin(), lowers.begin() + (k - 1), lowers.end(),
                     std::greater<double>());
    const double kth_lower = lowers[k - 1];
    std::erase_if(active, [&](size_t idx) {
      return candidates[idx].interval.upper < kth_lower;
    });

    const uint64_t grown = static_cast<uint64_t>(
        std::ceil(static_cast<double>(m) * options.growth_factor));
    m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
  }
}

}  // namespace swope
