#include "src/core/exec_control.h"

#include "src/common/stopwatch.h"

namespace swope {

Status ExecControl::Check() const {
  if (token != nullptr && token->cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (has_deadline && SteadyNow() >= deadline) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

}  // namespace swope
