#include "src/core/exec_control.h"

namespace swope {

Status ExecControl::Check() const {
  if (token != nullptr && token->cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

}  // namespace swope
