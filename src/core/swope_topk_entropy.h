// SWOPE-Top-k on empirical entropy (Algorithm 1 of the paper).
//
// Returns k attributes forming an approximate top-k answer per
// Definition 5: with probability >= 1 - p_f, the i-th returned attribute
// has (i) an estimate within (1 - eps) of its own true entropy and (ii) a
// true entropy within (1 - eps) of the true i-th largest entropy.
//
// The algorithm samples a growing prefix of one random row permutation,
// maintains per-attribute confidence intervals [H_lower, H_upper] from
// Lemma 3, and stops as soon as
//     (H_upper(a'_k) - 2*lambda - b_max) / H_upper(a'_k) >= 1 - eps,
// where a'_k is the attribute with the k-th largest upper bound and b_max
// the largest bias term among the current top-k. Attributes whose upper
// bound falls below the k-th largest lower bound are pruned and stop
// being counted.

#ifndef SWOPE_CORE_SWOPE_TOPK_ENTROPY_H_
#define SWOPE_CORE_SWOPE_TOPK_ENTROPY_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Runs Algorithm 1. `k` is clamped to the number of attributes; the
/// result lists attributes in descending upper-bound order.
Result<TopKResult> SwopeTopKEntropy(const Table& table, size_t k,
                                    const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_CORE_SWOPE_TOPK_ENTROPY_H_
