#include "src/core/prefix_sampler.h"

// PrefixSampler is header-only; this translation unit anchors the header
// in the build so include hygiene is compiler-checked.
