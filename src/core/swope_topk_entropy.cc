#include "src/core/swope_topk_entropy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/exec_control.h"
#include "src/core/frequency_counter.h"
#include "src/core/prefix_sampler.h"

namespace swope {

namespace {

struct Candidate {
  size_t column = 0;
  FrequencyCounter counter{0};
  EntropyInterval interval;
};

}  // namespace

Result<TopKResult> SwopeTopKEntropy(const Table& table, size_t k,
                                    const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  const uint64_t n = table.num_rows();
  const size_t h = table.num_columns();
  if (h == 0) return Status::InvalidArgument("top-k: table has no columns");
  if (k == 0) return Status::InvalidArgument("top-k: k must be >= 1");
  k = std::min(k, h);

  const double pf = options.ResolveFailureProbability(n);
  const uint64_t m0 =
      options.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options.initial_sample_size))
          : ComputeM0(n, h, pf, table.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  const double p_iter = pf / (static_cast<double>(i_max) *
                              static_cast<double>(h));

  TopKResult result;
  result.stats.initial_sample_size = m0;

  SWOPE_ASSIGN_OR_RETURN(
      PrefixSampler sampler,
      MakePrefixSampler(static_cast<uint32_t>(n), options));
  std::vector<Candidate> candidates(h);
  for (size_t j = 0; j < h; ++j) {
    candidates[j].column = j;
    candidates[j].counter = FrequencyCounter(table.column(j).support());
  }
  // Indices into `candidates` still in the candidate set C.
  std::vector<size_t> active(h);
  for (size_t j = 0; j < h; ++j) active[j] = j;

  auto finalize = [&](uint64_t m) {
    // Order the active candidates by descending upper bound and emit the
    // top k.
    std::vector<size_t> order = active;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidates[a].interval.upper != candidates[b].interval.upper) {
        return candidates[a].interval.upper > candidates[b].interval.upper;
      }
      return a < b;
    });
    order.resize(std::min(order.size(), k));
    for (size_t idx : order) {
      const Candidate& c = candidates[idx];
      result.items.push_back({c.column, table.column(c.column).name(),
                              c.interval.Estimate(), c.interval.lower,
                              c.interval.upper});
    }
    result.stats.final_sample_size = m;
    result.stats.candidates_remaining = active.size();
    result.stats.exhausted_dataset = (m >= n);
  };

  uint64_t m = std::min<uint64_t>(m0, n);
  for (;;) {
    if (options.control != nullptr) {
      SWOPE_RETURN_NOT_OK(options.control->Check());
    }
    ++result.stats.iterations;
    // Absorb the new permutation slice into every active counter.
    const PrefixSampler::Range range = sampler.GrowTo(m);
    for (size_t idx : active) {
      Candidate& c = candidates[idx];
      c.counter.AddRows(table.column(c.column), sampler.order(), range.begin,
                        range.end);
      c.interval = MakeEntropyInterval(c.counter.SampleEntropy(),
                                       table.column(c.column).support(), n, m,
                                       p_iter);
    }
    result.stats.cells_scanned +=
        (range.end - range.begin) * active.size();

    // k-th largest upper bound and the bias of the current top-k set.
    std::vector<double> uppers;
    uppers.reserve(active.size());
    for (size_t idx : active) uppers.push_back(candidates[idx].interval.upper);
    std::nth_element(uppers.begin(), uppers.begin() + (k - 1), uppers.end(),
                     std::greater<double>());
    const double kth_upper = uppers[k - 1];

    double b_max = 0.0;
    for (size_t idx : active) {
      const Candidate& c = candidates[idx];
      if (c.interval.upper >= kth_upper) {
        b_max = std::max(b_max, c.interval.bias);
      }
    }
    const double lambda = PermutationLambda(n, m, p_iter);

    // Stopping rule (Algorithm 1 line 8). A non-positive k-th upper bound
    // means every candidate entropy is zero, so any answer is exact.
    const bool stop =
        kth_upper <= 0.0 ||
        (kth_upper - 2.0 * lambda - b_max) / kth_upper >= 1.0 - options.epsilon;
    if (stop) {
      finalize(m);
      return result;
    }
    if (m >= n) {
      // Bounds are exact at M = N, so `stop` always fires there; this is a
      // defensive backstop.
      finalize(m);
      return result;
    }

    // Prune candidates that cannot be in the top-k: upper bound strictly
    // below the k-th largest lower bound (Algorithm 1 lines 14-17).
    std::vector<double> lowers;
    lowers.reserve(active.size());
    for (size_t idx : active) lowers.push_back(candidates[idx].interval.lower);
    std::nth_element(lowers.begin(), lowers.begin() + (k - 1), lowers.end(),
                     std::greater<double>());
    const double kth_lower = lowers[k - 1];
    std::erase_if(active, [&](size_t idx) {
      return candidates[idx].interval.upper < kth_lower;
    });

    const uint64_t grown = static_cast<uint64_t>(
        std::ceil(static_cast<double>(m) * options.growth_factor));
    m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
  }
}

}  // namespace swope
