// CodeScratchArena: reusable decode buffers for gather-then-count.
//
// Scorers decode each round's newly exposed permutation slice into a
// scratch buffer before feeding the span to a counter (the split the
// bit-packed storage forces: PackedCodes has no per-row hot path). The
// arena keeps those buffers alive across rounds and hands them out to
// whichever worker asks, so a query allocates O(pool size) buffers total
// instead of one per (candidate, round). Buffer contents are never
// reused -- Gather overwrites the prefix a lease reads -- so recycling
// cannot affect results.

#ifndef SWOPE_CORE_CODE_SCRATCH_H_
#define SWOPE_CORE_CODE_SCRATCH_H_

#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/table/packed_codes.h"

namespace swope {

/// A thread-safe pool of ValueCode vectors. Acquire returns a buffer
/// (empty or recycled); Release returns it for reuse. Typical use is via
/// the RAII Lease.
class CodeScratchArena {
 public:
  /// RAII lease: holds a buffer, returns it to the arena on destruction.
  class Lease {
   public:
    explicit Lease(CodeScratchArena& arena) REQUIRES(!arena.mutex_)
        : arena_(&arena), buffer_(arena.Acquire()) {}
    ~Lease() REQUIRES(!arena_->mutex_) {
      if (arena_ != nullptr) arena_->Release(std::move(buffer_));
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    std::vector<ValueCode>& buffer() { return buffer_; }

   private:
    CodeScratchArena* arena_;
    std::vector<ValueCode> buffer_;
  };

  std::vector<ValueCode> Acquire() REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    if (free_.empty()) return {};
    std::vector<ValueCode> buffer = std::move(free_.back());
    free_.pop_back();
    return buffer;
  }

  void Release(std::vector<ValueCode> buffer) REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    free_.push_back(std::move(buffer));
  }

 private:
  Mutex mutex_;
  std::vector<std::vector<ValueCode>> free_ GUARDED_BY(mutex_);
};

}  // namespace swope

#endif  // SWOPE_CORE_CODE_SCRATCH_H_
