#include "src/core/entropy.h"

#include <algorithm>

#include "src/common/flat_hash_map.h"
#include "src/common/math.h"
#include "src/table/column_view.h"

namespace swope {

namespace {

// Threshold (in cells) below which a dense joint-count table is used.
constexpr uint64_t kDenseJointLimit = 1ULL << 22;  // 4M cells = 32 MB

// Decode chunk for the exact sequential scans below: big enough to
// amortize the kernel dispatch, small enough to stay in L1.
constexpr uint64_t kDecodeChunk = 4096;

}  // namespace

double ExactEntropy(const Column& column) {
  return ExactEntropyPrefix(column, column.size());
}

double ExactEntropyPrefix(const Column& column, uint64_t m) {
  if (m == 0) return 0.0;
  std::vector<uint64_t> counts(column.support(), 0);
  const ColumnView view(column);
  std::vector<ValueCode> scratch;
  for (uint64_t begin = 0; begin < m; begin += kDecodeChunk) {
    const uint64_t end = std::min(m, begin + kDecodeChunk);
    const ValueCode* codes = view.Decode(begin, end, scratch);
    for (uint64_t i = 0; i < end - begin; ++i) ++counts[codes[i]];
  }
  return EntropyFromCounts(counts, m);
}

Result<double> ExactJointEntropy(const Column& a, const Column& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("joint entropy: column sizes differ (" +
                                   std::to_string(a.size()) + " vs " +
                                   std::to_string(b.size()) + ")");
  }
  const uint64_t n = a.size();
  if (n == 0) return 0.0;
  const uint64_t cells =
      static_cast<uint64_t>(a.support()) * static_cast<uint64_t>(b.support());
  double sum_xlog2x = 0.0;
  const ColumnView view_a(a);
  const ColumnView view_b(b);
  std::vector<ValueCode> scratch_a;
  std::vector<ValueCode> scratch_b;
  if (cells > 0 && cells <= kDenseJointLimit) {
    std::vector<uint64_t> counts(cells, 0);
    const uint32_t ub = b.support();
    for (uint64_t begin = 0; begin < n; begin += kDecodeChunk) {
      const uint64_t end = std::min(n, begin + kDecodeChunk);
      const ValueCode* ca = view_a.Decode(begin, end, scratch_a);
      const ValueCode* cb = view_b.Decode(begin, end, scratch_b);
      for (uint64_t i = 0; i < end - begin; ++i) {
        ++counts[static_cast<uint64_t>(ca[i]) * ub + cb[i]];
      }
    }
    for (uint64_t c : counts) {
      if (c > 1) sum_xlog2x += XLog2X(static_cast<double>(c));
    }
  } else {
    FlatHashMap<uint64_t, uint64_t> counts(1 << 12);
    for (uint64_t begin = 0; begin < n; begin += kDecodeChunk) {
      const uint64_t end = std::min(n, begin + kDecodeChunk);
      const ValueCode* ca = view_a.Decode(begin, end, scratch_a);
      const ValueCode* cb = view_b.Decode(begin, end, scratch_b);
      for (uint64_t i = 0; i < end - begin; ++i) {
        const uint64_t key = (static_cast<uint64_t>(ca[i]) << 32) | cb[i];
        ++counts[key];
      }
    }
    counts.ForEach([&](uint64_t, uint64_t c) {
      if (c > 1) sum_xlog2x += XLog2X(static_cast<double>(c));
    });
  }
  return EntropyFromXLog2XSum(sum_xlog2x, n);
}

Result<double> ExactMutualInformation(const Column& a, const Column& b) {
  auto joint = ExactJointEntropy(a, b);
  if (!joint.ok()) return joint.status();
  const double mi = ExactEntropy(a) + ExactEntropy(b) - *joint;
  return mi < 0.0 ? 0.0 : mi;
}

std::vector<double> ExactEntropies(const Table& table) {
  std::vector<double> entropies;
  entropies.reserve(table.num_columns());
  for (const Column& column : table.columns()) {
    entropies.push_back(ExactEntropy(column));
  }
  return entropies;
}

Result<std::vector<double>> ExactMutualInformations(const Table& table,
                                                    size_t target) {
  if (target >= table.num_columns()) {
    return Status::InvalidArgument("exact MI: target index out of range");
  }
  // Scan the target's marginal once; per candidate only its marginal and
  // the joint pass remain (2 passes per candidate, the baseline cost the
  // paper's Exact competitor pays).
  const double target_entropy = ExactEntropy(table.column(target));
  std::vector<double> mis(table.num_columns(), 0.0);
  for (size_t j = 0; j < table.num_columns(); ++j) {
    if (j == target) continue;
    auto joint = ExactJointEntropy(table.column(target), table.column(j));
    if (!joint.ok()) return joint.status();
    const double mi =
        target_entropy + ExactEntropy(table.column(j)) - *joint;
    mis[j] = mi < 0.0 ? 0.0 : mi;
  }
  return mis;
}

}  // namespace swope
