// QueryMemory: the pooled per-query allocation state behind the
// engine's zero-allocation serving path.
//
// One QueryMemory bundles the two recycled stores a query needs:
//
//   arena()    the bump-pointer Arena every per-query container
//              (counters, intervals, active sets, result items)
//              allocates from via QueryOptions::memory,
//   scratch()  the CodeScratchArena of decode buffers scorers borrow
//              via QueryOptions::scratch.
//
// QueryMemoryPool hands these out as move-only leases. The engine
// attaches the lease to the QueryResponse it returns, so arena-backed
// response items stay valid exactly as long as the response exists;
// when the last owner drops the lease, the arena is rewound (blocks
// kept) and the QueryMemory goes back to the pool. After a warmup
// query has sized the arena blocks and decode buffers, a same-shaped
// query runs without touching the heap (tests/alloc_regression_test.cc
// pins this with an interposed counting allocator).
//
// Thread safety: the pool is internally synchronized; one lease must be
// used by one query at a time (the query's own shard tasks may allocate
// concurrently -- Arena::Allocate is locked).

#ifndef SWOPE_CORE_QUERY_MEMORY_H_
#define SWOPE_CORE_QUERY_MEMORY_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/arena.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/code_scratch.h"

namespace swope {

/// One query's recycled allocation state. Obtain via
/// QueryMemoryPool::Acquire; wire into QueryOptions::memory / ::scratch.
class QueryMemory {
 public:
  QueryMemory() = default;
  QueryMemory(const QueryMemory&) = delete;
  QueryMemory& operator=(const QueryMemory&) = delete;

  Arena& arena() { return arena_; }
  CodeScratchArena& scratch() { return scratch_; }

  /// Drops every per-query allocation while keeping the arena's blocks
  /// and the scratch buffers for the next query. Called by the pool on
  /// release; callers must ensure no arena-backed container survives.
  void Reset() { arena_.Rewind(); }

 private:
  Arena arena_;
  CodeScratchArena scratch_;
};

class QueryMemoryPool;

/// Move-only handle to a pooled QueryMemory. Destroying (or moving-from
/// and destroying) the lease resets the memory and returns it to the
/// pool. The pool is kept alive by shared ownership, so a lease may
/// safely outlive the engine that created it (e.g. a caller holding a
/// QueryResponse after engine shutdown).
class QueryMemoryLease {
 public:
  QueryMemoryLease() = default;
  QueryMemoryLease(std::shared_ptr<QueryMemoryPool> pool,
                   std::unique_ptr<QueryMemory> memory)
      : pool_(std::move(pool)), memory_(std::move(memory)) {}

  QueryMemoryLease(QueryMemoryLease&&) noexcept = default;
  QueryMemoryLease& operator=(QueryMemoryLease&& other) noexcept {
    if (this != &other) {
      ReturnToPool();
      pool_ = std::move(other.pool_);
      memory_ = std::move(other.memory_);
    }
    return *this;
  }
  QueryMemoryLease(const QueryMemoryLease&) = delete;
  QueryMemoryLease& operator=(const QueryMemoryLease&) = delete;

  ~QueryMemoryLease() { ReturnToPool(); }

  QueryMemory* get() const { return memory_.get(); }
  QueryMemory* operator->() const { return memory_.get(); }
  explicit operator bool() const { return memory_ != nullptr; }

 private:
  void ReturnToPool();

  std::shared_ptr<QueryMemoryPool> pool_;
  std::unique_ptr<QueryMemory> memory_;
};

/// Bounded free-list of QueryMemory objects. Create via
/// std::make_shared so leases can co-own the pool.
class QueryMemoryPool {
 public:
  /// Keeps at most `max_idle` memories warm; surplus releases free their
  /// heap instead of growing the pool without bound.
  explicit QueryMemoryPool(size_t max_idle = 8) : max_idle_(max_idle) {}

  QueryMemoryPool(const QueryMemoryPool&) = delete;
  QueryMemoryPool& operator=(const QueryMemoryPool&) = delete;

  /// Hands out a warm QueryMemory when one is idle, else a fresh one.
  /// `self` must be the shared_ptr owning this pool.
  static QueryMemoryLease Acquire(
      const std::shared_ptr<QueryMemoryPool>& self) {
    std::unique_ptr<QueryMemory> memory;
    {
      MutexLock lock(self->mutex_);
      if (!self->idle_.empty()) {
        memory = std::move(self->idle_.back());
        self->idle_.pop_back();
      }
    }
    if (memory == nullptr) memory = std::make_unique<QueryMemory>();
    return QueryMemoryLease(self, std::move(memory));
  }

  /// Arena bytes reserved across the idle memories (leased-out memories
  /// report through their query's response instead).
  size_t IdleArenaBytes() const REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    size_t total = 0;
    for (const auto& memory : idle_) total += memory->arena().BytesReserved();
    return total;
  }

  size_t IdleCount() const REQUIRES(!mutex_) {
    MutexLock lock(mutex_);
    return idle_.size();
  }

 private:
  friend class QueryMemoryLease;

  void Release(std::unique_ptr<QueryMemory> memory) REQUIRES(!mutex_) {
    memory->Reset();
    MutexLock lock(mutex_);
    if (idle_.size() < max_idle_) idle_.push_back(std::move(memory));
    // else: drop on the floor; the unique_ptr frees the arena blocks.
  }

  const size_t max_idle_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<QueryMemory>> idle_ GUARDED_BY(mutex_);
};

inline void QueryMemoryLease::ReturnToPool() {
  if (memory_ != nullptr && pool_ != nullptr) {
    pool_->Release(std::move(memory_));
  }
  memory_.reset();
  pool_.reset();
}

}  // namespace swope

#endif  // SWOPE_CORE_QUERY_MEMORY_H_
