#include "src/core/frequency_counter.h"

#include "src/common/math.h"

namespace swope {

FrequencyCounter::FrequencyCounter(uint32_t support,
                                   std::pmr::memory_resource* memory)
    : counts_(support, 0,
              memory != nullptr ? memory : std::pmr::get_default_resource()) {}

double FrequencyCounter::SampleEntropy() const {
  return EntropyFromCounts(counts_.data(), counts_.size(), sample_count_);
}

void FrequencyCounter::Merge(const FrequencyCounter& other) {
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t add = other.counts_[i];
    if (add == 0) continue;
    if (counts_[i] == 0) ++distinct_seen_;
    counts_[i] += add;
  }
  sample_count_ += other.sample_count_;
}

void FrequencyCounter::Reset() {
  counts_.assign(counts_.size(), 0);
  sample_count_ = 0;
  distinct_seen_ = 0;
}

}  // namespace swope
