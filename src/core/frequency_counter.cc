#include "src/core/frequency_counter.h"

#include "src/common/math.h"

namespace swope {

FrequencyCounter::FrequencyCounter(uint32_t support)
    : counts_(support, 0) {}

double FrequencyCounter::SampleEntropy() const {
  return EntropyFromCounts(counts_, sample_count_);
}

void FrequencyCounter::Reset() {
  counts_.assign(counts_.size(), 0);
  sample_count_ = 0;
  distinct_seen_ = 0;
}

}  // namespace swope
