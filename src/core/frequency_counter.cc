#include "src/core/frequency_counter.h"

#include <cassert>

#include "src/common/math.h"

namespace swope {

FrequencyCounter::FrequencyCounter(uint32_t support)
    : counts_(support, 0) {}

void FrequencyCounter::AddRows(const Column& column,
                               const std::vector<uint32_t>& order,
                               uint64_t begin, uint64_t end) {
  assert(end <= order.size());
  for (uint64_t i = begin; i < end; ++i) Add(column.code(order[i]));
}

double FrequencyCounter::SampleEntropy() const {
  return EntropyFromCounts(counts_, sample_count_);
}

void FrequencyCounter::Reset() {
  counts_.assign(counts_.size(), 0);
  sample_count_ = 0;
  distinct_seen_ = 0;
}

}  // namespace swope
