#include "src/core/swope_topk_mi.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/bounds.h"
#include "src/core/exec_control.h"
#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/prefix_sampler.h"

namespace swope {

namespace {

struct MiCandidate {
  size_t column = 0;
  FrequencyCounter marginal{0};
  PairCounter joint{0, 0};
  MiInterval interval;
};

}  // namespace

Result<TopKResult> SwopeTopKMi(const Table& table, size_t target, size_t k,
                               const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  const uint64_t n = table.num_rows();
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument("mi top-k: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument("mi top-k: need at least two columns");
  }
  if (k == 0) return Status::InvalidArgument("mi top-k: k must be >= 1");
  k = std::min(k, h - 1);

  const Column& target_col = table.column(target);
  const double pf = options.ResolveFailureProbability(n);
  const uint64_t m0 =
      options.initial_sample_size > 0
          ? std::min<uint64_t>(n, std::max<uint64_t>(
                                      kMinSampleSize,
                                      options.initial_sample_size))
          : ComputeM0(n, h, pf, table.MaxSupport());
  const uint32_t i_max = MaxIterations(n, m0);
  const double p_iter =
      pf / (3.0 * static_cast<double>(i_max) * static_cast<double>(h - 1));

  TopKResult result;
  result.stats.initial_sample_size = m0;

  SWOPE_ASSIGN_OR_RETURN(
      PrefixSampler sampler,
      MakePrefixSampler(static_cast<uint32_t>(n), options));
  FrequencyCounter target_counter(target_col.support());
  std::vector<MiCandidate> candidates;
  candidates.reserve(h - 1);
  for (size_t j = 0; j < h; ++j) {
    if (j == target) continue;
    MiCandidate c;
    c.column = j;
    c.marginal = FrequencyCounter(table.column(j).support());
    c.joint = PairCounter(target_col.support(), table.column(j).support(),
                          options.dense_pair_limit);
    candidates.push_back(std::move(c));
  }
  std::vector<size_t> active(candidates.size());
  for (size_t i = 0; i < active.size(); ++i) active[i] = i;

  auto finalize = [&](uint64_t m) {
    std::vector<size_t> order = active;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidates[a].interval.upper != candidates[b].interval.upper) {
        return candidates[a].interval.upper > candidates[b].interval.upper;
      }
      return candidates[a].column < candidates[b].column;
    });
    order.resize(std::min(order.size(), k));
    for (size_t idx : order) {
      const MiCandidate& c = candidates[idx];
      result.items.push_back({c.column, table.column(c.column).name(),
                              c.interval.Estimate(), c.interval.lower,
                              c.interval.upper});
    }
    result.stats.final_sample_size = m;
    result.stats.candidates_remaining = active.size();
    result.stats.exhausted_dataset = (m >= n);
  };

  uint64_t m = std::min<uint64_t>(m0, n);
  for (;;) {
    if (options.control != nullptr) {
      SWOPE_RETURN_NOT_OK(options.control->Check());
    }
    ++result.stats.iterations;
    const PrefixSampler::Range range = sampler.GrowTo(m);
    target_counter.AddRows(target_col, sampler.order(), range.begin,
                           range.end);
    const EntropyInterval target_interval =
        MakeEntropyInterval(target_counter.SampleEntropy(),
                            target_col.support(), n, m, p_iter);
    for (size_t idx : active) {
      MiCandidate& c = candidates[idx];
      const Column& col = table.column(c.column);
      c.marginal.AddRows(col, sampler.order(), range.begin, range.end);
      c.joint.AddRows(target_col, col, sampler.order(), range.begin,
                      range.end);
      const EntropyInterval marginal_interval = MakeEntropyInterval(
          c.marginal.SampleEntropy(), col.support(), n, m, p_iter);
      const uint64_t u_bar = static_cast<uint64_t>(target_col.support()) *
                             static_cast<uint64_t>(col.support());
      const EntropyInterval joint_interval = MakeEntropyInterval(
          c.joint.SampleJointEntropy(), u_bar, n, m, p_iter);
      c.interval =
          MakeMiInterval(target_interval, marginal_interval, joint_interval);
    }
    // Target marginal plus, per candidate, one marginal and one joint
    // update per row.
    result.stats.cells_scanned +=
        (range.end - range.begin) * (1 + 2 * active.size());

    std::vector<double> uppers;
    uppers.reserve(active.size());
    for (size_t idx : active) uppers.push_back(candidates[idx].interval.upper);
    std::nth_element(uppers.begin(), uppers.begin() + (k - 1), uppers.end(),
                     std::greater<double>());
    const double kth_upper = uppers[k - 1];

    double slack_max = 0.0;
    for (size_t idx : active) {
      const MiCandidate& c = candidates[idx];
      if (c.interval.upper >= kth_upper) {
        slack_max = std::max(slack_max, c.interval.slack);
      }
    }

    const bool stop = kth_upper <= 0.0 ||
                      (kth_upper - slack_max) / kth_upper >=
                          1.0 - options.epsilon;
    if (stop || m >= n) {
      finalize(m);
      return result;
    }

    std::vector<double> lowers;
    lowers.reserve(active.size());
    for (size_t idx : active) lowers.push_back(candidates[idx].interval.lower);
    std::nth_element(lowers.begin(), lowers.begin() + (k - 1), lowers.end(),
                     std::greater<double>());
    const double kth_lower = lowers[k - 1];
    std::erase_if(active, [&](size_t idx) {
      return candidates[idx].interval.upper < kth_lower;
    });

    const uint64_t grown = static_cast<uint64_t>(
        std::ceil(static_cast<double>(m) * options.growth_factor));
    m = std::min<uint64_t>(n, std::max<uint64_t>(m + 1, grown));
  }
}

}  // namespace swope
