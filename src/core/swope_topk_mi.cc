// This TU lives in src/core/ and may use the internal driver headers.
#define SWOPE_CORE_INTERNAL

#include "src/core/swope_topk_mi.h"

#include <algorithm>
#include <utility>

#include "src/core/adaptive_sampling_driver.h"
#include "src/core/scorers.h"
#include "src/core/sketch_estimation.h"

namespace swope {

Result<TopKResult> SwopeTopKMi(const Table& table, size_t target, size_t k,
                               const QueryOptions& options) {
  SWOPE_RETURN_NOT_OK(options.Validate());
  SWOPE_RETURN_NOT_OK(ValidateColumnSupports(table, options));
  const size_t h = table.num_columns();
  if (target >= h) {
    return Status::InvalidArgument("mi top-k: target index out of range");
  }
  if (h < 2) {
    return Status::InvalidArgument("mi top-k: need at least two columns");
  }
  if (k == 0) return Status::InvalidArgument("mi top-k: k must be >= 1");
  k = std::min(k, h - 1);

  MiScorer scorer(table, target, options);
  TopKPolicy policy(table, k, options.epsilon, options.memory);
  AdaptiveSamplingDriver driver(table, options);
  SWOPE_ASSIGN_OR_RETURN(AdaptiveSamplingDriver::Output output,
                         driver.Run(scorer, policy));
  return TopKResult{std::move(output.items), output.stats};
}

}  // namespace swope
