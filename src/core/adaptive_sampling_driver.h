// The unified SWOPE adaptive-sampling loop (internal to src/core/).
//
// Every SWOPE query — entropy / MI / NMI, top-k / filter — runs the same
// machinery: draw one row permutation, grow a sample prefix, fold the new
// slice into per-candidate counters, derive El-Yaniv–Pechyony + bias
// confidence intervals, apply a stopping rule, prune, and grow M. The
// AdaptiveSamplingDriver owns that loop once; a Scorer supplies the
// per-candidate counters and intervals, and a DecisionPolicy supplies the
// stopping rule, pruning, and answer assembly. The public entry points
// (swope_topk_entropy.h et al.) are thin wrappers that pick the pair.
//
// Parallelism and determinism: when QueryOptions::pool is set, the driver
// decomposes each round into (candidate x shard) tasks over the table's
// row shards and fans them out across the pool: each task counts one
// shard's sub-slice into a candidate-and-shard-private delta counter,
// and each candidate's deltas merge in fixed ascending shard order at
// round end (FinalizeCandidate). The answer is byte-identical to the
// serial path -- at any thread count and any shard count -- because
//   (1) shared round state (the MI target counter) is absorbed serially in
//       BeginRound before any candidate update,
//   (2) shard tasks touch only (candidate, shard)-local state, counter
//       merging is exact integer addition, and every entropy evaluation
//       is a canonical pure function of the merged counts,
//   (3) every reduction over candidates (k-th bounds, stopping slack,
//       filter classification) runs serially afterwards, in the fixed
//       active-candidate order.
// Sketch-backed candidates are the exception: conservative-update
// counting is sample-order-dependent, so they stay whole-slice tasks
// that absorb the slice in permutation order. docs/CORE.md and
// docs/SHARDING.md spell out the full argument.
//
// This header is internal: outside src/core/, include the public
// swope_*.h entry points instead. src/core/ TUs opt in by defining
// SWOPE_CORE_INTERNAL before their includes; everyone else hits the
// #error below (tools/lint.py catches the include textually, the
// preprocessor makes it a hard build break — see
// tests/compile_fail/core_internal_include.cc).

#ifndef SWOPE_CORE_ADAPTIVE_SAMPLING_DRIVER_H_
#define SWOPE_CORE_ADAPTIVE_SAMPLING_DRIVER_H_

#ifndef SWOPE_CORE_INTERNAL
#error "src/core/adaptive_sampling_driver.h is internal to src/core/; include the public swope_topk_*/swope_filter_* headers instead"
#endif

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <vector>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/core/shard_partition.h"
#include "src/table/table.h"

namespace swope {

/// The memory resource a query's transient state allocates from: the
/// caller-provided arena (QueryOptions::memory) or the global heap.
inline std::pmr::memory_resource* ResolveQueryMemory(
    const QueryOptions& options) {
  return options.memory != nullptr ? options.memory
                                   : std::pmr::get_default_resource();
}

/// A candidate's confidence interval plus the scorer-specific stopping
/// ingredient (entropy: the Lemma 1 bias b; MI: the total slack b').
struct ScoreInterval {
  double lower = 0.0;
  double upper = 0.0;
  double slack = 0.0;

  /// Midpoint estimate (lower + upper) / 2 — the certified answer value.
  double Estimate() const { return 0.5 * (lower + upper); }
  double Width() const { return upper - lower; }
};

/// Owns the per-candidate counters of one query and turns sample prefixes
/// into ScoreIntervals. Implementations: EntropyScorer, MiScorer,
/// NmiScorer (src/core/scorers.h).
class Scorer {
 public:
  virtual ~Scorer() = default;

  Scorer(const Scorer&) = delete;
  Scorer& operator=(const Scorer&) = delete;

  /// Number of candidate attributes (h for entropy, h-1 for MI/NMI).
  size_t num_candidates() const { return columns_.size(); }
  /// Table column index of candidate `c`.
  size_t column(size_t c) const { return columns_[c]; }
  /// Interval computed by the most recent UpdateCandidate(c, ...).
  const ScoreInterval& interval(size_t c) const { return intervals_[c]; }
  /// Candidates scored through the sketch-backed frequency path; fixed at
  /// construction, copied into QueryStats::sketch_candidates by the
  /// driver.
  size_t sketch_candidates() const { return sketch_candidates_; }

  /// Union-bound multiplier: intervals derived per candidate per round
  /// (1 for entropy; 3 for MI/NMI, which bound three entropies).
  virtual double bounds_per_candidate() const = 0;

  /// Counter cells touched per newly sampled row while `active` candidates
  /// remain (entropy: one per candidate; MI/NMI: the shared target update
  /// plus a marginal and a joint update per candidate).
  virtual uint64_t CellsPerRow(size_t active) const = 0;

  /// Fixes the query-wide constants before the first round.
  void Bind(uint64_t n, double p_iter) {
    n_ = n;
    p_iter_ = p_iter;
  }

  /// Absorbs order[begin..end) into candidate-independent shared state
  /// (the MI/NMI target counter). Runs serially, once per round, before
  /// any UpdateCandidate of that round.
  virtual void BeginRound(const std::vector<uint32_t>& order, uint64_t begin,
                          uint64_t end, uint64_t m);

  /// Absorbs order[begin..end) into candidate `c`'s counters and
  /// recomputes interval(c) at sample size `m`. Must touch only
  /// candidate-`c` state: the driver calls this concurrently for distinct
  /// candidates. The whole-slice path: serial rounds, and parallel
  /// rounds for candidates that are not shardable.
  virtual void UpdateCandidate(size_t c, const std::vector<uint32_t>& order,
                               uint64_t begin, uint64_t end, uint64_t m) = 0;

  /// True when candidate `c`'s counters admit the per-shard
  /// count-then-merge decomposition (exact integer counters). False for
  /// sketch-backed candidates, whose conservative-update counting is
  /// sample-order-dependent and must absorb whole slices in permutation
  /// order.
  virtual bool CandidateShardable(size_t /*c*/) const { return false; }

  /// Sizes the per-candidate per-shard delta counters. Called once by
  /// the driver (serially, before the first decomposed round) with the
  /// table's shard count.
  virtual void PrepareSharding(size_t /*num_shards*/) {}

  /// Absorbs partition shard `shard`'s sub-slice into candidate `c`'s
  /// shard-private delta counters. Must touch only (c, shard)-local
  /// state plus round-constant shared state: the driver calls this
  /// concurrently across distinct (c, shard) pairs. Requires
  /// PrepareSharding and CandidateShardable(c).
  virtual void UpdateCandidateShard(size_t /*c*/, size_t /*shard*/,
                                    const ShardSlicePartition& /*partition*/) {
  }

  /// Merges candidate `c`'s delta counters into its cumulative counters
  /// in fixed ascending shard order, resets the deltas, and recomputes
  /// interval(c) at sample size `m`. Candidate-local; the driver calls
  /// it for every shardable active candidate once all of the round's
  /// shard tasks completed.
  virtual void FinalizeCandidate(size_t /*c*/,
                                 const ShardSlicePartition& /*partition*/,
                                 uint64_t /*m*/) {}

  /// The kind-specific top-k stopping rule, given the k-th largest upper
  /// bound over `active`. Each implementation reproduces its algorithm's
  /// exact arithmetic (Algorithms 1 and 3, and the NMI relative-width
  /// rule); a non-positive kth_upper always stops.
  virtual bool TopKShouldStop(const std::pmr::vector<size_t>& active,
                              double kth_upper, uint64_t m,
                              double epsilon) const = 0;

 protected:
  /// All per-candidate state allocates from `memory` (null: global heap).
  explicit Scorer(std::pmr::memory_resource* memory = nullptr)
      : memory_(memory != nullptr ? memory
                                  : std::pmr::get_default_resource()),
        columns_(memory_),
        intervals_(memory_) {}

  std::pmr::memory_resource* const memory_;  // never null
  std::pmr::vector<size_t> columns_;         // candidate -> table column
  std::pmr::vector<ScoreInterval> intervals_;  // candidate -> latest interval
  size_t sketch_candidates_ = 0;        // candidates on the sketch path
  uint64_t n_ = 0;
  double p_iter_ = 0.0;
};

/// Consumes the round's intervals: classifies / prunes candidates, decides
/// when to stop, and assembles the answer items.
class DecisionPolicy {
 public:
  virtual ~DecisionPolicy() = default;

  /// One round's decision, after all active candidates were updated.
  /// May shrink `active` (pruning / classification); returns true when the
  /// query is done. Runs serially in the fixed active order.
  virtual bool Decide(const Scorer& scorer, std::pmr::vector<size_t>& active,
                      uint64_t m, uint64_t n,
                      std::pmr::vector<AttributeScore>& items) = 0;

  /// Assembles the final items after the loop stops.
  virtual void Finalize(const Scorer& scorer,
                        const std::pmr::vector<size_t>& active,
                        std::pmr::vector<AttributeScore>& items) = 0;
};

/// Top-k (Algorithms 1 and 3): stop via Scorer::TopKShouldStop on the
/// k-th largest upper bound, prune candidates whose upper bound falls
/// below the k-th largest lower bound, emit the k best by upper bound
/// (ties by ascending column index).
class TopKPolicy : public DecisionPolicy {
 public:
  /// Round scratch (the k-th-bound selection buffers) allocates from
  /// `memory` (null: global heap) and keeps its capacity across rounds.
  TopKPolicy(const Table& table, size_t k, double epsilon,
             std::pmr::memory_resource* memory = nullptr)
      : table_(table),
        k_(k),
        epsilon_(epsilon),
        uppers_(memory != nullptr ? memory
                                  : std::pmr::get_default_resource()),
        lowers_(uppers_.get_allocator()),
        order_(uppers_.get_allocator()) {}

  bool Decide(const Scorer& scorer, std::pmr::vector<size_t>& active,
              uint64_t m, uint64_t n,
              std::pmr::vector<AttributeScore>& items) override;
  void Finalize(const Scorer& scorer, const std::pmr::vector<size_t>& active,
                std::pmr::vector<AttributeScore>& items) override;

 private:
  const Table& table_;
  size_t k_;
  double epsilon_;
  // Per-round selection scratch, reused so rounds allocate nothing once
  // capacities are warm.
  std::pmr::vector<double> uppers_;
  std::pmr::vector<double> lowers_;
  std::pmr::vector<size_t> order_;
};

/// Filter (Algorithms 2 and 4): classify each candidate against eta as
/// soon as its interval permits — accept when the interval is narrow and
/// the estimate clears eta, or the lower bound certifies it; reject when
/// the upper bound rules it out; keep sampling otherwise. Stops when no
/// candidate is left undecided. Accepted items are emitted in ascending
/// column order.
class FilterPolicy : public DecisionPolicy {
 public:
  /// Round scratch allocates from `memory` (null: global heap).
  FilterPolicy(const Table& table, double eta, double epsilon,
               std::pmr::memory_resource* memory = nullptr)
      : table_(table),
        eta_(eta),
        epsilon_(epsilon),
        still_active_(memory != nullptr ? memory
                                        : std::pmr::get_default_resource()) {}

  bool Decide(const Scorer& scorer, std::pmr::vector<size_t>& active,
              uint64_t m, uint64_t n,
              std::pmr::vector<AttributeScore>& items) override;
  void Finalize(const Scorer& scorer, const std::pmr::vector<size_t>& active,
                std::pmr::vector<AttributeScore>& items) override;

 private:
  const Table& table_;
  double eta_;
  double epsilon_;
  // Survivor scratch swapped with `active` each round; same resource as
  // the driver's active vector so the swap is a buffer steal.
  std::pmr::vector<size_t> still_active_;
};

/// The shared sampling loop. Wrappers validate their inputs, construct the
/// scorer/policy pair, and call Run.
class AdaptiveSamplingDriver {
 public:
  AdaptiveSamplingDriver(const Table& table, const QueryOptions& options)
      : table_(table), options_(options) {}

  /// `items` allocates from QueryOptions::memory; see the TopKResult
  /// lifetime contract (src/core/query_result.h).
  struct Output {
    explicit Output(std::pmr::memory_resource* memory = nullptr)
        : items(memory != nullptr ? memory
                                  : std::pmr::get_default_resource()) {}
    std::pmr::vector<AttributeScore> items;
    QueryStats stats;
  };

  Result<Output> Run(Scorer& scorer, DecisionPolicy& policy);

 private:
  const Table& table_;
  const QueryOptions& options_;
};

}  // namespace swope

#endif  // SWOPE_CORE_ADAPTIVE_SAMPLING_DRIVER_H_
