// PairCounter: incremental joint-value statistics for a column pair,
// the mutual-information analogue of FrequencyCounter.
//
// Maintains counts of (code_a, code_b) pairs plus the running
// sum m_{ij} log2 m_{ij}, so the sample joint entropy H_S(a, b) is O(1)
// after each batch. Storage is adaptive: tiny domains use a dense
// u_a*u_b array immediately; larger domains start with the
// open-addressing FlatHashMap (an MI query builds one counter per
// candidate, and most candidates are pruned after a few thousand
// samples, so eagerly zeroing h dense arrays would dominate the query)
// and migrate to the dense layout once enough distinct pairs accumulate
// to make it worthwhile -- provided the domain fits under `dense_limit`.

#ifndef SWOPE_CORE_PAIR_COUNTER_H_
#define SWOPE_CORE_PAIR_COUNTER_H_

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "src/common/flat_hash_map.h"
#include "src/table/packed_codes.h"

namespace swope {

/// Incremental joint counter over code pairs from two attributes.
class PairCounter {
 public:
  /// Domains up to this many cells go dense at construction.
  static constexpr uint64_t kImmediateDenseCells = 4096;

  /// `support_a`, `support_b`: supports of the two attributes.
  /// `dense_limit`: maximum u_a*u_b (in cells) the dense layout may use.
  /// Both layouts allocate from `memory` (default: the global heap) --
  /// including the dense array a later migration builds -- so an
  /// arena-backed counter never touches the heap.
  PairCounter(uint32_t support_a, uint32_t support_b,
              uint64_t dense_limit = 1ULL << 20,
              std::pmr::memory_resource* memory = nullptr);

  uint64_t sample_count() const { return sample_count_; }
  /// Number of distinct pairs observed so far.
  uint64_t distinct_pairs() const { return distinct_pairs_; }
  /// True when currently using the dense layout (may flip from false to
  /// true over the counter's lifetime, never back).
  bool is_dense() const { return is_dense_; }

  /// Absorbs one sampled pair.
  void Add(ValueCode a, ValueCode b) {
    if (is_dense_) {
      Bump(dense_[Key(a, b)]);
    } else {
      AddSparse(a, b);
    }
  }

  /// Absorbs `count` pre-decoded pairs (a[i], b[i]), in order. Callers
  /// gather both columns' slices through ColumnView first; preserving the
  /// per-index order keeps results bit-identical to per-row Add calls.
  void AddCodes(const ValueCode* a, const ValueCode* b, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) Add(a[i], b[i]);
  }

  /// Sample joint entropy H_S(a, b) in bits.
  double SampleJointEntropy() const;

  /// Adds `other`'s counts into this counter. `other` must have been
  /// built over the same key space (same supports); its layout (dense or
  /// sparse) is irrelevant. Pair counts, the sample count, and the
  /// distinct-pair count merge by exact integer addition, so whole-slice
  /// counting and any shard-partitioned count-then-merge reach identical
  /// counts (pinned by shard_merge_property_test). The running
  /// x*log2(x) sum is updated per merged key, so merged entropies may
  /// differ from a sample-by-sample build in the last ulps -- which is
  /// why the query hot path replays samples in slice order instead of
  /// merging (docs/SHARDING.md).
  void Merge(const PairCounter& other);

  /// Forgets all counts, keeping the domain and (for a migrated counter)
  /// the dense layout.
  void Reset();

  /// Count of a specific pair (for tests).
  uint64_t count(ValueCode a, ValueCode b) const;

 private:
  uint64_t Key(ValueCode a, ValueCode b) const {
    return static_cast<uint64_t>(a) * support_b_ + b;
  }
  void Bump(uint64_t& slot);
  void AddSparse(ValueCode a, ValueCode b);
  void MergeKey(uint64_t key, uint64_t add);
  void MigrateToDense();

  uint32_t support_b_;
  uint64_t cells_;
  uint64_t dense_limit_;
  bool is_dense_;
  std::pmr::memory_resource* memory_;
  std::pmr::vector<uint64_t> dense_;
  FlatHashMap<uint64_t, uint64_t> sparse_;
  uint64_t sample_count_ = 0;
  uint64_t distinct_pairs_ = 0;
  double sum_xlog2x_ = 0.0;
};

}  // namespace swope

#endif  // SWOPE_CORE_PAIR_COUNTER_H_
