// Bias-corrected entropy estimation over a SketchSummary, plus the
// policy that decides when a column takes the sketch path.
//
// A CountMinSketch overcounts: every counter carries collision noise of
// roughly (M - c) / (w - 1) on top of a value's true count c (the mass of
// the other values spread over the row's remaining w - 1 cells).
// EstimateSketchEntropy subtracts that noise from each tracked heavy
// value, then brackets the contribution of the untracked residual mass R
// between its two extremes -- all of R on one value (minimum entropy) and
// R spread uniformly over the remaining distinct values (maximum) --
// yielding a [lower, upper] band around the sample entropy.
// MakeSketchEntropyInterval composes that band with the same
// El-Yaniv-Pechyony + Lemma 1 machinery the exact path uses
// (src/core/bounds.h), folding the band's width into the interval's
// slack so the stopping rules stay conservative. docs/SKETCH.md derives
// the estimator and its failure modes.

#ifndef SWOPE_CORE_SKETCH_ESTIMATION_H_
#define SWOPE_CORE_SKETCH_ESTIMATION_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/bounds.h"
#include "src/core/query_options.h"
#include "src/sketch/frequency_provider.h"
#include "src/table/table.h"

namespace swope {

/// Sketch failure probability per provider (the delta in the CMS
/// guarantee; fixed so sketch shape depends only on sketch_epsilon and
/// the canonical key stays small).
inline constexpr double kSketchDelta = 0.01;

/// Heavy values tracked per marginal provider. Columns whose support is
/// at most this are summarized exactly up to collision noise -- chosen
/// above the paper's u <= 1000 regime so a control column run through the
/// sketch path reproduces the exact answer within the sketch epsilon.
inline constexpr uint32_t kSketchHeavyCapacity = 1024;
/// Heavy pairs tracked per joint provider.
inline constexpr uint32_t kSketchJointHeavyCapacity = 4096;

/// True when a column with this support takes the sketch path under
/// `options`: sketches are enabled (sketch_epsilon > 0) and the support
/// exceeds sketch_threshold.
bool UsesSketchPath(uint32_t support, const QueryOptions& options);

/// The exact path's admission check: with sketches disabled, a candidate
/// column whose support exceeds options.sketch_threshold is rejected with
/// InvalidArgument naming the column and its support (the paper's u <=
/// 1000 preprocessing made explicit instead of silently dropping
/// columns). OK when every column is admissible.
Status ValidateColumnSupports(const Table& table, const QueryOptions& options);

/// A provider sized for `options` (width from sketch_epsilon, depth from
/// kSketchDelta). `seed_salt` decorrelates the hash streams of distinct
/// columns; `heavy_capacity` is one of the capacities above.
Result<SketchFrequencyProvider> MakeQuerySketchProvider(
    const QueryOptions& options, uint64_t seed_salt,
    uint32_t heavy_capacity);

/// The bias-corrected sample-entropy band of a summary. All values in
/// bits, clamped into [0, log2(min(support_cap, M))].
struct SketchEntropyEstimate {
  double lower = 0.0;
  double upper = 0.0;
  /// Midpoint of the band: the reported sample-entropy estimate.
  double estimate = 0.0;
};

SketchEntropyEstimate EstimateSketchEntropy(const SketchSummary& summary,
                                            uint64_t support_cap);

/// Composes the sketch band with the permutation deviation and bias
/// bounds at sample size m of n (failure probability p), mirroring
/// MakeEntropyInterval on the exact path. The band's width is added to
/// the interval's bias term, which the top-k / filter stopping rules
/// treat as irreducible slack.
EntropyInterval MakeSketchEntropyInterval(const SketchSummary& summary,
                                          uint64_t support_cap, uint64_t n,
                                          uint64_t m, double p);

}  // namespace swope

#endif  // SWOPE_CORE_SKETCH_ESTIMATION_H_
