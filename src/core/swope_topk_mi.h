// SWOPE-Top-k on empirical mutual information (Algorithm 3 of the paper).
//
// Given a target attribute a_t, scores every other attribute a by
// I(a_t, a) = H(a_t) + H(a) - H(a_t, a) and returns an approximate top-k
// answer per Definition 5. Each of the three entropies gets a Lemma 3
// interval (the joint entropy uses the support bound u_bar = u_t * u_a in
// its bias term); the MI interval is their composition, with total slack
// 6*lambda + b(a_t) + b(a) + b(a_t, a). The stopping rule is
//     (I_upper(a'_k) - 6*lambda - b'_max) / I_upper(a'_k) >= 1 - eps.
// The per-application failure budget is p_f / (3 * i_max * (h-1)) because
// three bounds are applied per candidate per iteration.

#ifndef SWOPE_CORE_SWOPE_TOPK_MI_H_
#define SWOPE_CORE_SWOPE_TOPK_MI_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Runs Algorithm 3. `target` is the column index of a_t; `k` is clamped
/// to h - 1. The result lists attributes in descending upper-bound order.
Result<TopKResult> SwopeTopKMi(const Table& table, size_t target, size_t k,
                               const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_CORE_SWOPE_TOPK_MI_H_
