// Extension: approximate filtering on NORMALIZED mutual information,
// the threshold counterpart of SwopeTopKNmi. Returns every attribute with
// NMI(a_t, a) >= (1+eps)*eta, no attribute below (1-eps)*eta, using the
// same three classification rules as Algorithm 2 applied to the NMI
// confidence interval. Thresholds are in [0, 1] (NMI is normalized).

#ifndef SWOPE_CORE_SWOPE_FILTER_NMI_H_
#define SWOPE_CORE_SWOPE_FILTER_NMI_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Approximate NMI filtering against column `target` with threshold
/// `eta` in (0, 1]. Items are in ascending column-index order.
Result<FilterResult> SwopeFilterNmi(const Table& table, size_t target,
                                    double eta,
                                    const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_CORE_SWOPE_FILTER_NMI_H_
