// PrefixSampler: serves growing prefixes of one random row permutation.
//
// A query draws a single permutation of [0, N) up front; the sample of
// size M in iteration i is the prefix order[0..M). Reusing the prefix
// across iterations is sound by the martingale argument in Section 3.1 of
// the paper, and it is what makes the incremental counters correct.

#ifndef SWOPE_CORE_PREFIX_SAMPLER_H_
#define SWOPE_CORE_PREFIX_SAMPLER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/table/shuffle.h"

namespace swope {

/// Holds a shuffled row order (owned, or shared with other queries) and
/// tracks how much of it has been consumed.
class PrefixSampler {
 public:
  /// Shuffles [0, num_rows) deterministically from `seed`. When
  /// `sequential` is true the stored row order is used as-is instead --
  /// the paper's "sequential sampling" on columnar storage (Section 6.1),
  /// which is sound whenever the stored order is exchangeable (data
  /// shuffled once offline, or generated i.i.d.) and is much more cache
  /// friendly than per-query random access.
  PrefixSampler(uint32_t num_rows, uint64_t seed, bool sequential = false)
      : order_(std::make_shared<const std::vector<uint32_t>>(
            sequential ? IdentityOrder(num_rows)
                       : ShuffledRowOrder(num_rows, seed))) {}

  /// Adopts an externally owned order (the engine's PermutationCache);
  /// `order` must be a permutation of [0, order->size()) and non-null.
  explicit PrefixSampler(std::shared_ptr<const std::vector<uint32_t>> order)
      : order_(std::move(order)) {}

  /// Total number of rows.
  uint64_t num_rows() const { return order_->size(); }
  /// Rows consumed so far (current M).
  uint64_t consumed() const { return consumed_; }
  const std::vector<uint32_t>& order() const { return *order_; }

  /// Advances the consumed prefix to min(target_m, num_rows) and returns
  /// the [begin, end) range of newly exposed positions in order().
  /// Counters should absorb rows order()[begin..end).
  struct Range {
    uint64_t begin;
    uint64_t end;
  };
  Range GrowTo(uint64_t target_m) {
    const uint64_t begin = consumed_;
    const uint64_t target = std::min<uint64_t>(target_m, order_->size());
    if (target > consumed_) consumed_ = target;  // never rewind
    return {begin, consumed_};
  }

 private:
  static std::vector<uint32_t> IdentityOrder(uint32_t num_rows) {
    std::vector<uint32_t> order(num_rows);
    for (uint32_t i = 0; i < num_rows; ++i) order[i] = i;
    return order;
  }

  std::shared_ptr<const std::vector<uint32_t>> order_;
  uint64_t consumed_ = 0;
};

/// Builds the sampler a driver should use for `options` over a table of
/// `num_rows` rows: the engine-injected shared order when present (after
/// validating its length), otherwise a fresh per-query order.
inline Result<PrefixSampler> MakePrefixSampler(uint32_t num_rows,
                                               const QueryOptions& options) {
  if (options.shared_order != nullptr) {
    if (options.shared_order->size() != num_rows) {
      return Status::InvalidArgument(
          "shared_order length does not match the queried table");
    }
    return PrefixSampler(options.shared_order);
  }
  return PrefixSampler(num_rows, options.seed, options.sequential_sampling);
}

}  // namespace swope

#endif  // SWOPE_CORE_PREFIX_SAMPLER_H_
