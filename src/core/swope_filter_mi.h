// SWOPE-Filtering on empirical mutual information (Algorithm 4 of the
// paper).
//
// Same three classification rules as the entropy filter (Algorithm 2),
// applied to the MI interval [I_lower, I_upper] of each candidate against
// the target attribute:
//   1. I_upper - I_lower < 2*eps*eta -> decide by the midpoint estimate
//   2. I_lower >= (1-eps)*eta        -> accept
//   3. I_upper <  (1+eps)*eta        -> reject
// with failure budget p_f / (3 * i_max * (h-1)).

#ifndef SWOPE_CORE_SWOPE_FILTER_MI_H_
#define SWOPE_CORE_SWOPE_FILTER_MI_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Runs Algorithm 4 with threshold `eta` (must be > 0) against the column
/// index `target`. The result lists accepted attributes in ascending
/// column-index order.
Result<FilterResult> SwopeFilterMi(const Table& table, size_t target,
                                   double eta,
                                   const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_CORE_SWOPE_FILTER_MI_H_
