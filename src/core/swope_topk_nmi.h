// Extension: approximate top-k on NORMALIZED mutual information,
//   NMI(a_t, a) = I(a_t, a) / sqrt(H(a_t) * H(a)),
// the symmetric-uncertainty-style score used by NMI feature selection
// (Estevez et al., reference [12] of the paper). The paper itself stops
// at raw MI; this module extends its machinery to the normalized score:
// the NMI confidence interval is composed from the MI interval and the
// two marginal entropy intervals,
//   NMI_lower = I_lower / sqrt(H_upper(t) * H_upper(a))
//   NMI_upper = I_upper / sqrt(H_lower(t) * H_lower(a)),
// clamped into [0, 1], and the stopping rule is the generalized
// relative-width rule: stop once every attribute in the current top-k set
// has (upper - lower) <= eps * upper, which implies both Definition 5
// conditions by the same argument as Theorem 1.

#ifndef SWOPE_CORE_SWOPE_TOPK_NMI_H_
#define SWOPE_CORE_SWOPE_TOPK_NMI_H_

#include <cstddef>

#include "src/common/result.h"
#include "src/core/query_options.h"
#include "src/core/query_result.h"
#include "src/table/table.h"

namespace swope {

/// Exact NMI between two columns (0 when either marginal entropy is 0).
Result<double> ExactNormalizedMi(const Column& a, const Column& b);

/// Exact NMI of every column against `target` (target slot = 0).
Result<std::vector<double>> ExactNormalizedMis(const Table& table,
                                               size_t target);

/// Approximate top-k on NMI against column `target`; same contract as
/// SwopeTopKMi.
Result<TopKResult> SwopeTopKNmi(const Table& table, size_t target, size_t k,
                                const QueryOptions& options = {});

}  // namespace swope

#endif  // SWOPE_CORE_SWOPE_TOPK_NMI_H_
