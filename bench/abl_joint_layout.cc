// Ablation: dense vs hashed joint-count layout for the MI queries.
// PairCounter picks a dense u_t*u_a array under QueryOptions::
// dense_pair_limit and the FlatHashMap above it; this study measures the
// end-to-end MI top-k cost under forced-dense, adaptive (default), and
// forced-sparse layouts.

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/swope_topk_mi.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner(
      "Ablation: joint-counter layout (MI top-k, k=4, eps=0.5)", config,
      bench::kDefaultMiBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultMiBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << " (avg over " << config.targets
              << " targets)\n";
    const auto targets =
        bench::PickTargets(dataset.table, config.targets, config.seed);
    struct Layout {
      std::string label;
      uint64_t dense_limit;
    };
    const Layout layouts[] = {
        {"forced sparse (hash everything)", 1},
        {"adaptive (default, 1M cells)", 1ULL << 20},
        {"forced dense (up to 64M cells)", 1ULL << 26}};

    ReportTable table({"layout", "time (ms)"});
    for (const Layout& layout : layouts) {
      double total = 0.0;
      for (size_t target : targets) {
        QueryOptions options;
        options.epsilon = 0.5;
        options.seed = config.seed + target;
        options.sequential_sampling = true;
        options.dense_pair_limit = layout.dense_limit;
        total += TimeRepeated(config.reps, [&] {
                   auto result =
                       SwopeTopKMi(dataset.table, target, 4, options);
                   if (!result.ok()) std::exit(1);
                 }).mean_seconds;
      }
      table.AddRow({layout.label,
                    ReportTable::FormatMillis(
                        total / static_cast<double>(targets.size()))});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
