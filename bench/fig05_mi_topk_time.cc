// Figure 5 reproduction: empirical mutual information top-k query time
// vs k, averaged over several random target attributes per dataset.
// Series: SWOPE (eps = 0.5, the paper's default), EntropyRank-MI, Exact.

#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/exact.h"
#include "src/baselines/mi_rank.h"
#include "src/core/swope_topk_mi.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 5: MI top-k query time (ms)", config,
                     bench::kDefaultMiBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultMiBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << " (avg over " << config.targets
              << " targets)\n";
    const auto targets =
        bench::PickTargets(dataset.table, config.targets, config.seed);
    // The exact scan cost does not depend on k; time it once per target.
    double exact_total = 0.0;
    for (size_t target : targets) {
      exact_total += TimeRepeated(config.reps, [&] {
                       auto result = ExactTopKMi(dataset.table, target, 1);
                       if (!result.ok()) std::exit(1);
                     }).mean_seconds;
    }
    const double exact_mean =
        exact_total / static_cast<double>(targets.size());

    ReportTable table({"k", "SWOPE", "EntropyRank", "Exact",
                       "SWOPE vs Rank", "SWOPE vs Exact", "SWOPE cells"});
    for (size_t k : {1, 2, 4, 8, 10}) {
      double swope_total = 0.0;
      double rank_total = 0.0;
      uint64_t swope_cells = 0;  // summed over targets, like the times
      for (size_t target : targets) {
        QueryOptions options;
        options.epsilon = 0.5;
        options.seed = config.seed + target;
        options.sequential_sampling = true;
        uint64_t target_cells = 0;
        swope_total +=
            TimeRepeated(config.reps, [&] {
              auto result = SwopeTopKMi(dataset.table, target, k, options);
              if (!result.ok()) std::exit(1);
              target_cells = result->stats.cells_scanned;
            }).mean_seconds;
        swope_cells += target_cells;
        rank_total +=
            TimeRepeated(config.reps, [&] {
              auto result = MiRankTopK(dataset.table, target, k, options);
              if (!result.ok()) std::exit(1);
            }).mean_seconds;
      }
      const double swope_mean =
          swope_total / static_cast<double>(targets.size());
      const double rank_mean =
          rank_total / static_cast<double>(targets.size());
      table.AddRow({std::to_string(k),
                    ReportTable::FormatMillis(swope_mean),
                    ReportTable::FormatMillis(rank_mean),
                    ReportTable::FormatMillis(exact_mean),
                    FormatSpeedup(rank_mean, swope_mean),
                    FormatSpeedup(exact_mean, swope_mean),
                    std::to_string(swope_cells)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";

    // Where the time goes: one profiled run at the paper's default
    // setting (k = 8, first target) per dataset, recorded into
    // BENCH_results.json as its own `<dataset>-stages` section.
    if (!targets.empty()) {
      QueryOptions profiled;
      profiled.epsilon = 0.5;
      profiled.seed = config.seed + targets[0];
      profiled.sequential_sampling = true;
      StageProfiler profiler;
      profiled.profiler = &profiler;
      if (!SwopeTopKMi(dataset.table, targets[0], 8, profiled).ok()) {
        std::exit(1);
      }
      bench::PrintStageBreakdown(dataset.name, profiler);
    }
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
