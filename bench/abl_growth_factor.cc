// Ablation: sample-size growth factor. The paper doubles (x2) in every
// iteration; this study measures how x1.5 / x2 / x3 / x4 trade bound
// evaluations against overshoot on the entropy top-k and filtering
// queries.

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Ablation: growth factor (entropy queries, k=4, eta=2)",
                     config, bench::kDefaultBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << "\n";
    ReportTable table({"growth", "top-k time (ms)", "top-k samples",
                       "top-k iters", "filter time (ms)", "filter samples",
                       "filter iters"});
    for (double growth : {1.5, 2.0, 3.0, 4.0}) {
      QueryOptions options;
      options.epsilon = 0.1;
      options.seed = config.seed;
      options.sequential_sampling = true;
      options.growth_factor = growth;

      Result<TopKResult> topk(Status::Internal("unset"));
      const Timing topk_time = TimeRepeated(config.reps, [&] {
        topk = SwopeTopKEntropy(dataset.table, 4, options);
        if (!topk.ok()) std::exit(1);
      });
      options.epsilon = 0.05;
      Result<FilterResult> filter(Status::Internal("unset"));
      const Timing filter_time = TimeRepeated(config.reps, [&] {
        filter = SwopeFilterEntropy(dataset.table, 2.0, options);
        if (!filter.ok()) std::exit(1);
      });

      table.AddRow({ReportTable::FormatDouble(growth, 1),
                    ReportTable::FormatMillis(topk_time.mean_seconds),
                    std::to_string(topk->stats.final_sample_size),
                    std::to_string(topk->stats.iterations),
                    ReportTable::FormatMillis(filter_time.mean_seconds),
                    std::to_string(filter->stats.final_sample_size),
                    std::to_string(filter->stats.iterations)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
