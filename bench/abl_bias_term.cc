// Ablation: decomposition of the confidence-interval width into the
// permutation deviation term (2*lambda, support-independent) and the
// Lemma 1 bias term (b(alpha), support-dependent), across sample sizes.
// Shows which term gates the stopping rules at each scale: for small M
// the bias term dominates high-support attributes, which is why the
// stopping rules must carry it (a pure-lambda rule would be unsound).

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/bounds.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Ablation: interval width decomposition", config,
                     bench::kDefaultBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << "\n";
    const uint64_t n = dataset.table.num_rows();
    const double pf = 1.0 / static_cast<double>(n);
    // Mean and max support across the pruned columns.
    uint64_t support_sum = 0;
    uint32_t support_max = 0;
    for (const Column& column : dataset.table.columns()) {
      support_sum += column.support();
      support_max = std::max(support_max, column.support());
    }
    const uint32_t support_mean =
        static_cast<uint32_t>(support_sum / dataset.table.num_columns());

    ReportTable table({"M", "2*lambda", "b(mean u)", "b(max u)",
                       "bias share @max u"});
    for (uint64_t m = 256; m <= n; m *= 4) {
      const double lambda = PermutationLambda(n, m, pf);
      const double b_mean = BiasBound(support_mean, n, m);
      const double b_max = BiasBound(support_max, n, m);
      const double width = 2.0 * lambda + b_max;
      table.AddRow({std::to_string(m),
                    ReportTable::FormatDouble(2.0 * lambda, 4),
                    ReportTable::FormatDouble(b_mean, 4),
                    ReportTable::FormatDouble(b_max, 4),
                    ReportTable::FormatDouble(
                        width > 0 ? b_max / width : 0.0, 3)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
