// Ablation: scalability in N. The exact-answer methods scan O(N) while
// SWOPE's sample size is set by the scores and epsilon, not by N
// (Theorems 2 and 4) -- so the speedup grows roughly linearly with N.
// This is the lens through which the laptop-scale reproductions should be
// read against the paper's 3.7M-33.7M-row testbed: at small N every
// method degenerates to a full scan.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/thread_pool.h"
#include "src/baselines/entropy_rank.h"
#include "src/baselines/exact.h"
#include "src/core/entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  std::cout << "# Ablation: scalability in N (cdc preset, entropy top-4, "
               "eps=0.1)\n\n";
  ReportTable table({"rows", "SWOPE (ms)", "SWOPE samples",
                     "EntropyRank (ms)", "Exact (ms)", "SWOPE vs Exact"});
  for (uint64_t rows : {125000ULL, 250000ULL, 500000ULL, 1000000ULL,
                        2000000ULL, 4000000ULL}) {
    if (config.quick && rows > 500000) break;
    auto made = MakePresetTable(DatasetPreset::kCdc, rows, config.seed);
    if (!made.ok()) std::exit(1);
    const Table dataset = made->DropHighSupportColumns(1000);

    QueryOptions options;
    options.epsilon = 0.1;
    options.seed = config.seed;
    options.sequential_sampling = true;

    Result<TopKResult> swope(Status::Internal("unset"));
    const Timing swope_time = TimeRepeated(config.reps, [&] {
      swope = SwopeTopKEntropy(dataset, 4, options);
      if (!swope.ok()) std::exit(1);
    });
    const Timing rank_time = TimeRepeated(config.reps, [&] {
      if (!EntropyRankTopK(dataset, 4, options).ok()) std::exit(1);
    });
    const Timing exact_time = TimeRepeated(config.reps, [&] {
      if (!ExactTopKEntropy(dataset, 4).ok()) std::exit(1);
    });

    table.AddRow({std::to_string(rows),
                  ReportTable::FormatMillis(swope_time.mean_seconds),
                  std::to_string(swope->stats.final_sample_size),
                  ReportTable::FormatMillis(rank_time.mean_seconds),
                  ReportTable::FormatMillis(exact_time.mean_seconds),
                  FormatSpeedup(exact_time.mean_seconds,
                                swope_time.mean_seconds)});
  }
  table.PrintMarkdown(std::cout);

  // MI needs a couple hundred thousand to a few million samples before
  // its stopping rule can fire (the joint-entropy slack decays like
  // log(M)/sqrt(M)), so the SWOPE-vs-Exact gap opens later in N than for
  // plain entropy -- exactly why the paper evaluates at 3.7M-33.7M rows.
  std::cout << "\n# Scalability in N: MI top-1 (cdc preset, eps=0.5, "
               "informative target)\n\n";
  // Pick a target that actually has informative partners (MI >= 1 bit if
  // one exists); an isolated noise target forces every method to a full
  // scan at any N and says nothing about scaling.
  size_t target = 1;
  {
    auto probe = MakePresetTable(DatasetPreset::kCdc, 125000, config.seed);
    if (!probe.ok()) std::exit(1);
    const Table dataset = probe->DropHighSupportColumns(1000);
    double best_mi = -1.0;
    for (size_t t = 1; t < dataset.num_columns(); t += 9) {
      auto scores = ExactMutualInformations(dataset, t);
      if (!scores.ok()) std::exit(1);
      const double top =
          *std::max_element(scores->begin(), scores->end());
      if (top > best_mi) {
        best_mi = top;
        target = t;
      }
    }
    std::cout << "target column " << target << " (strongest partner MI "
              << ReportTable::FormatDouble(best_mi, 2) << " bits)\n\n";
  }
  ReportTable mi_table({"rows", "SWOPE (ms)", "SWOPE samples", "Exact (ms)",
                        "SWOPE vs Exact"});
  for (uint64_t rows : {250000ULL, 500000ULL, 1000000ULL, 2000000ULL,
                        4000000ULL}) {
    if (config.quick && rows > 500000) break;
    auto made = MakePresetTable(DatasetPreset::kCdc, rows, config.seed);
    if (!made.ok()) std::exit(1);
    const Table dataset = made->DropHighSupportColumns(1000);

    QueryOptions options;
    options.epsilon = 0.5;
    options.seed = config.seed;
    options.sequential_sampling = true;

    Result<TopKResult> swope(Status::Internal("unset"));
    const Timing swope_time = TimeRepeated(config.reps, [&] {
      swope = SwopeTopKMi(dataset, target, 1, options);
      if (!swope.ok()) std::exit(1);
    });
    const Timing exact_time = TimeRepeated(config.reps, [&] {
      if (!ExactTopKMi(dataset, target, 1).ok()) std::exit(1);
    });
    mi_table.AddRow({std::to_string(rows),
                     ReportTable::FormatMillis(swope_time.mean_seconds),
                     std::to_string(swope->stats.final_sample_size),
                     ReportTable::FormatMillis(exact_time.mean_seconds),
                     FormatSpeedup(exact_time.mean_seconds,
                                   swope_time.mean_seconds)});
  }
  mi_table.PrintMarkdown(std::cout);

  // Intra-query parallelism: the per-candidate counter-update phase fans
  // out across QueryOptions::pool. The answer is byte-identical at every
  // thread count (docs/CORE.md), so this sweep is purely a latency curve;
  // it needs a wide table (many candidates per round) to have work to
  // split, hence the 100-column cdc preset with a small epsilon to force
  // deep sampling.
  std::cout << "\n# Intra-query thread sweep (cdc preset, entropy top-4, "
               "eps=0.01)\n\n";
  {
    const uint64_t rows = config.quick ? 500000 : 2000000;
    auto made = MakePresetTable(DatasetPreset::kCdc, rows, config.seed);
    if (!made.ok()) std::exit(1);
    const Table dataset = made->DropHighSupportColumns(1000);

    QueryOptions options;
    options.epsilon = 0.01;
    options.seed = config.seed;
    options.sequential_sampling = true;

    ReportTable sweep({"threads", "SWOPE (ms)", "SWOPE samples",
                       "vs 1 thread"});
    double serial_seconds = 0.0;
    for (size_t threads : {1, 2, 4, 8}) {
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) {
        pool = std::make_unique<ThreadPool>(threads);
        options.pool = pool.get();
      } else {
        options.pool = nullptr;
      }
      Result<TopKResult> swope(Status::Internal("unset"));
      const Timing timing = TimeRepeated(config.reps, [&] {
        swope = SwopeTopKEntropy(dataset, 4, options);
        if (!swope.ok()) std::exit(1);
      });
      if (threads == 1) serial_seconds = timing.mean_seconds;
      sweep.AddRow({std::to_string(threads),
                    ReportTable::FormatMillis(timing.mean_seconds),
                    std::to_string(swope->stats.final_sample_size),
                    FormatSpeedup(serial_seconds, timing.mean_seconds)});
    }
    sweep.PrintMarkdown(std::cout);
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
