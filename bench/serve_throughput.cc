// Multi-query serving throughput: closed-loop clients hammering one
// QueryEngine over a sharded dataset, comparing the work-stealing pool
// against the single-queue baseline (EngineConfig::pool_mode) at several
// concurrency levels. Reports QPS plus p50/p99 latency per (clients,
// mode) cell; the `vs single-queue` column is the stealing-mode QPS
// ratio the sharding design is judged by (docs/SHARDING.md). The gap
// comes from scheduling -- per-task lock handoffs versus lock-free local
// deques -- so it only opens on multi-core hosts; on a single core both
// modes serialize and the ratio hovers near 1.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/engine/query_engine.h"
#include "src/eval/report.h"

namespace swope {
namespace {

constexpr uint64_t kShardSize = 2048;
constexpr size_t kIntraThreads = 4;

struct BurstResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t steals = 0;
};

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size())));
  return sorted_ms[index];
}

// `clients` closed-loop threads each run `per_client` distinct
// entropy-topk queries through QueryEngine::Run (caching disabled, so
// every query executes and its shard tasks land on the shared
// intra-query pool).
BurstResult RunBurst(const Table& table, PoolMode mode, size_t clients,
                     int per_client) {
  EngineConfig config;
  config.num_threads = 2;  // Submit() executor, unused by this bench
  config.intra_query_threads = kIntraThreads;
  config.pool_mode = mode;
  config.shard_size = kShardSize;
  config.max_in_flight = clients;
  config.result_cache_capacity = 0;
  QueryEngine engine(config);
  if (!engine.RegisterDataset("d", table).ok()) std::exit(1);

  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> workers;
  Stopwatch wall;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&engine, &latencies, c, per_client] {
      for (int i = 0; i < per_client; ++i) {
        QuerySpec spec;
        spec.dataset = "d";
        spec.kind = QueryKind::kEntropyTopK;
        spec.k = 4;
        spec.options.seed = 1 + c * 1000 + static_cast<uint64_t>(i);
        Stopwatch latency;
        if (!engine.Run(spec).ok()) std::exit(1);
        latencies[c].push_back(latency.ElapsedMillis());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const std::vector<double>& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  BurstResult result;
  result.qps = static_cast<double>(all.size()) / wall_seconds;
  result.p50_ms = Percentile(all, 0.50);
  result.p99_ms = Percentile(all, 0.99);
  result.steals = engine.GetCounters().pool_steals;
  return result;
}

void Run(const BenchConfig& config) {
  const uint64_t rows = config.RowsOrDefault(200000);
  std::cout << "# Serving throughput: work stealing vs single queue "
               "(cdc preset, entropy top-4 bursts)\n";
  // Config line in bench_to_json key=value form; shard geometry and the
  // intra-query pool width are part of the measurement's identity.
  std::cout << "rows=" << rows << " reps=" << config.reps
            << " shard_size=" << kShardSize
            << " intra_threads=" << kIntraThreads
            << " host_threads=" << std::thread::hardware_concurrency()
            << " seed=" << config.seed
            << (config.quick ? " (quick)" : "") << "\n\n";

  auto made = MakePresetTable(DatasetPreset::kCdc, rows, config.seed);
  if (!made.ok()) std::exit(1);
  const Table table = made->DropHighSupportColumns(1000);
  const size_t shards =
      static_cast<size_t>((table.num_rows() + kShardSize - 1) / kShardSize);

  std::cout << "## cdc\n\n";
  ReportTable report({"clients", "pool", "shards", "QPS", "p50 (ms)",
                      "p99 (ms)", "steals", "vs single-queue"});
  const int per_client = config.quick ? 3 : 8;
  for (size_t clients : {size_t{1}, size_t{4}, size_t{8}}) {
    if (config.quick && clients > 4) break;
    const BurstResult single =
        RunBurst(table, PoolMode::kSingleQueue, clients, per_client);
    const BurstResult stealing =
        RunBurst(table, PoolMode::kWorkStealing, clients, per_client);
    report.AddRow({std::to_string(clients),
                   PoolModeName(PoolMode::kSingleQueue),
                   std::to_string(shards),
                   ReportTable::FormatDouble(single.qps, 2),
                   ReportTable::FormatDouble(single.p50_ms, 2),
                   ReportTable::FormatDouble(single.p99_ms, 2),
                   std::to_string(single.steals), "1.0x"});
    report.AddRow({std::to_string(clients),
                   PoolModeName(PoolMode::kWorkStealing),
                   std::to_string(shards),
                   ReportTable::FormatDouble(stealing.qps, 2),
                   ReportTable::FormatDouble(stealing.p50_ms, 2),
                   ReportTable::FormatDouble(stealing.p99_ms, 2),
                   std::to_string(stealing.steals),
                   FormatSpeedup(stealing.qps, single.qps)});
  }
  report.PrintMarkdown(std::cout);
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
