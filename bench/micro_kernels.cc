// google-benchmark microbenchmarks for the kernels on the query hot path:
// counter updates, bound evaluation, sampling, shuffling, CSV parsing.

#include <memory>
#include <sstream>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/flat_hash_map.h"
#include "src/common/thread_pool.h"
#include "src/core/bounds.h"
#include "src/core/entropy.h"
#include "src/core/frequency_counter.h"
#include "src/core/pair_counter.h"
#include "src/core/swope_topk_entropy.h"
#include "src/datagen/distributions.h"
#include "src/datagen/generator.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/query_trace.h"
#include "src/table/column_view.h"
#include "src/table/csv_reader.h"
#include "src/table/csv_writer.h"
#include "src/table/shuffle.h"

namespace swope {
namespace {

Column MakeColumn(uint32_t support, uint64_t rows, uint64_t seed) {
  auto column = GenerateColumn(ColumnSpec::Zipf("z", support, 1.0), rows,
                               seed);
  if (!column.ok()) std::abort();
  return std::move(column).value();
}

void BM_FrequencyCounterAdd(benchmark::State& state) {
  const Column column = MakeColumn(64, 1 << 16, 1);
  const std::vector<ValueCode> codes =
      column.codes();  // NOLINT(swope-raw-codes): bench setup decode
  FrequencyCounter counter(64);
  uint64_t i = 0;
  for (auto _ : state) {
    counter.Add(codes[i & 0xffff]);
    ++i;
  }
  benchmark::DoNotOptimize(counter.SampleEntropy());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrequencyCounterAdd);

void BM_PairCounterAddDense(benchmark::State& state) {
  const std::vector<ValueCode> a =
      MakeColumn(64, 1 << 16, 2).codes();  // NOLINT(swope-raw-codes): setup
  const std::vector<ValueCode> b =
      MakeColumn(64, 1 << 16, 3).codes();  // NOLINT(swope-raw-codes): setup
  PairCounter counter(64, 64, /*dense_limit=*/1 << 20);
  uint64_t i = 0;
  for (auto _ : state) {
    counter.Add(a[i & 0xffff], b[i & 0xffff]);
    ++i;
  }
  benchmark::DoNotOptimize(counter.SampleJointEntropy());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairCounterAddDense);

void BM_PairCounterAddSparse(benchmark::State& state) {
  const std::vector<ValueCode> a =
      MakeColumn(64, 1 << 16, 2).codes();  // NOLINT(swope-raw-codes): setup
  const std::vector<ValueCode> b =
      MakeColumn(64, 1 << 16, 3).codes();  // NOLINT(swope-raw-codes): setup
  PairCounter counter(64, 64, /*dense_limit=*/1);
  uint64_t i = 0;
  for (auto _ : state) {
    counter.Add(a[i & 0xffff], b[i & 0xffff]);
    ++i;
  }
  benchmark::DoNotOptimize(counter.SampleJointEntropy());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairCounterAddSparse);

// The acceptance race for the packed storage: batch width-specialized
// gather (ColumnView::Gather) vs a per-row `code(order[i])` loop over the
// same permuted index sequence, at a realistic per-round slice size.
// Arg = support size (width 1, 6, 10 bits).
void BM_GatherDecode(benchmark::State& state) {
  constexpr uint64_t kRows = 1 << 14;
  const Column column =
      MakeColumn(static_cast<uint32_t>(state.range(0)), kRows, 21);
  const std::vector<uint32_t> order = ShuffledRowOrder(kRows, 9);
  const ColumnView view(column);
  std::vector<ValueCode> scratch(kRows);
  for (auto _ : state) {
    const ValueCode* codes = view.Gather(order, 0, kRows, scratch);
    benchmark::DoNotOptimize(codes);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_GatherDecode)->Arg(2)->Arg(64)->Arg(1000);

void BM_GatherDecodePerRow(benchmark::State& state) {
  constexpr uint64_t kRows = 1 << 14;
  const Column column =
      MakeColumn(static_cast<uint32_t>(state.range(0)), kRows, 21);
  const std::vector<uint32_t> order = ShuffledRowOrder(kRows, 9);
  std::vector<ValueCode> scratch(kRows);
  for (auto _ : state) {
    for (uint64_t i = 0; i < kRows; ++i) {
      scratch[i] = column.code(order[i]);  // NOLINT(swope-raw-codes): baseline
    }
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_GatherDecodePerRow)->Arg(2)->Arg(64)->Arg(1000);

void BM_FlatHashMapIncrement(benchmark::State& state) {
  FlatHashMap<uint64_t, uint64_t> map(1 << 12);
  Rng rng(7);
  std::vector<uint64_t> keys(1 << 14);
  for (auto& key : keys) key = rng.UniformU64(1 << 12);
  uint64_t i = 0;
  for (auto _ : state) {
    ++map[keys[i & 0x3fff]];
    ++i;
  }
  benchmark::DoNotOptimize(map.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatHashMapIncrement);

void BM_ExactEntropy(benchmark::State& state) {
  const Column column = MakeColumn(256, state.range(0), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactEntropy(column));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExactEntropy)->Arg(1 << 14)->Arg(1 << 18);

void BM_BoundEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MakeEntropyInterval(3.0, 256, 1 << 20, 1 << 12, 1e-6));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundEvaluation);

void BM_Shuffle(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ShuffledRowOrder(static_cast<uint32_t>(state.range(0)), 11));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Shuffle)->Arg(1 << 14)->Arg(1 << 18);

void BM_AliasSampling(benchmark::State& state) {
  const auto dist = CategoricalDistribution::Zipf(1000, 1.0);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSampling);

void BM_CsvParse(benchmark::State& state) {
  // Build a 1000-row, 10-column CSV once; parse it per iteration.
  TableSpec spec;
  spec.num_rows = 1000;
  spec.seed = 17;
  for (int j = 0; j < 10; ++j) {
    spec.columns.push_back(
        ColumnSpec::Uniform("c" + std::to_string(j), 50));
  }
  auto table = GenerateTable(spec);
  if (!table.ok()) std::abort();
  std::ostringstream csv;
  if (!WriteCsv(*table, csv).ok()) std::abort();
  const std::string text = csv.str();
  for (auto _ : state) {
    std::istringstream input(text);
    auto parsed = ReadCsv(input);
    if (!parsed.ok()) std::abort();
    benchmark::DoNotOptimize(parsed->num_rows());
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_CsvParse);

// The unified driver's per-round hot phase: fold a sample slice into one
// FrequencyCounter per candidate and recompute its entropy, fanned across
// a pool — the kernel parallelized by QueryOptions::pool. Arg = threads.
void BM_ParallelCandidateUpdate(benchmark::State& state) {
  constexpr size_t kCandidates = 32;
  constexpr uint64_t kRows = 1 << 16;
  std::vector<Column> columns;
  columns.reserve(kCandidates);
  for (size_t j = 0; j < kCandidates; ++j) {
    columns.push_back(MakeColumn(64, kRows, 100 + j));
  }
  std::vector<uint32_t> order(kRows);
  for (uint32_t i = 0; i < kRows; ++i) order[i] = i;

  const size_t threads = static_cast<size_t>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  std::vector<ColumnView> views;
  views.reserve(kCandidates);
  for (const Column& column : columns) views.emplace_back(column);
  std::vector<FrequencyCounter> counters(kCandidates,
                                         FrequencyCounter(64));
  std::vector<std::vector<ValueCode>> scratches(kCandidates);
  std::vector<double> entropies(kCandidates, 0.0);
  for (auto _ : state) {
    auto update = [&](size_t j) {
      const ValueCode* codes = views[j].Gather(order, 0, kRows, scratches[j]);
      counters[j].AddCodes(codes, kRows);
      entropies[j] = counters[j].SampleEntropy();
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, kCandidates, update);
    } else {
      for (size_t j = 0; j < kCandidates; ++j) update(j);
    }
    benchmark::DoNotOptimize(entropies.data());
  }
  state.SetItemsProcessed(state.iterations() * kCandidates * kRows);
}
BENCHMARK(BM_ParallelCandidateUpdate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Observability primitives in isolation: the per-update cost ceiling for
// any instrumented hot path.
void BM_CounterIncrement(benchmark::State& state) {
  Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.Value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  Histogram histogram(DefaultLatencyBucketsMs());
  double value = 0.01;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value < 5000.0 ? value * 1.7 : 0.01;
  }
  benchmark::DoNotOptimize(histogram.TotalCount());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

// The tracing-overhead acceptance bench: a full SwopeTopKEntropy query
// with tracing off (Arg 0, QueryOptions::trace null -- the default) vs
// on (Arg 1). Disabled tracing costs one branch per sampling round, so
// the two timings must agree within noise (well under 1%); compare the
// per-iteration times of the two args.
void BM_MetricsOverhead(benchmark::State& state) {
  TableSpec spec;
  spec.num_rows = 1 << 16;
  spec.seed = 29;
  for (int j = 0; j < 16; ++j) {
    spec.columns.push_back(
        ColumnSpec::Zipf("z" + std::to_string(j), 64,
                         1.0 + 0.05 * static_cast<double>(j)));
  }
  auto table = GenerateTable(spec);
  if (!table.ok()) std::abort();

  const bool traced = state.range(0) != 0;
  QueryTrace trace;
  QueryOptions options;
  options.seed = 5;
  options.sequential_sampling = true;
  if (traced) options.trace = &trace;
  for (auto _ : state) {
    trace.Clear();
    auto result = SwopeTopKEntropy(*table, 4, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->items.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1);

// The profiler contract (docs/OBSERVABILITY.md): attaching a
// StageProfiler must stay within 1% of the unprofiled query. Arg(0) is
// the disabled path (null profiler: one branch per instrumented site,
// no clock reads), Arg(1) the enabled path (two TSC reads per stage
// span). Same workload as BM_MetricsOverhead so the two comparisons
// share a baseline.
void BM_ProfileOverhead(benchmark::State& state) {
  TableSpec spec;
  spec.num_rows = 1 << 16;
  spec.seed = 29;
  for (int j = 0; j < 16; ++j) {
    spec.columns.push_back(
        ColumnSpec::Zipf("z" + std::to_string(j), 64,
                         1.0 + 0.05 * static_cast<double>(j)));
  }
  auto table = GenerateTable(spec);
  if (!table.ok()) std::abort();

  const bool profiled = state.range(0) != 0;
  StageProfiler profiler;
  QueryOptions options;
  options.seed = 5;
  options.sequential_sampling = true;
  if (profiled) options.profiler = &profiler;
  for (auto _ : state) {
    profiler.Clear();
    auto result = SwopeTopKEntropy(*table, 4, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->items.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileOverhead)->Arg(0)->Arg(1);

}  // namespace
}  // namespace swope

BENCHMARK_MAIN();
