// Figure 4 reproduction: empirical entropy filtering accuracy vs eta.
// Accuracy = fraction of attributes classified identically to the exact
// answer; the paper reports 100% at the default eps = 0.05.

#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/entropy_filter.h"
#include "src/baselines/exact.h"
#include "src/core/entropy.h"
#include "src/core/swope_filter_entropy.h"
#include "src/eval/accuracy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 4: entropy filtering accuracy", config,
                     bench::kDefaultBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << "\n";
    const auto exact_scores = ExactEntropies(dataset.table);
    std::vector<size_t> eligible(dataset.table.num_columns());
    for (size_t j = 0; j < eligible.size(); ++j) eligible[j] = j;

    ReportTable table({"eta", "SWOPE acc", "SWOPE F1", "EntropyFilter acc",
                       "Exact acc"});
    for (double eta : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
      QueryOptions options;
      options.epsilon = 0.05;
      options.seed = config.seed;
      options.sequential_sampling = true;
      auto swope = SwopeFilterEntropy(dataset.table, eta, options);
      auto baseline = EntropyFilterQuery(dataset.table, eta, options);
      auto exact = ExactFilterEntropy(dataset.table, eta);
      if (!swope.ok() || !baseline.ok() || !exact.ok()) std::exit(1);
      const FilterPrf prf =
          FilterPrecisionRecall(*swope, exact_scores, eligible, eta);
      table.AddRow(
          {ReportTable::FormatDouble(eta, 1),
           ReportTable::FormatDouble(
               FilterAccuracy(*swope, exact_scores, eligible, eta), 3),
           ReportTable::FormatDouble(prf.f1, 3),
           ReportTable::FormatDouble(
               FilterAccuracy(*baseline, exact_scores, eligible, eta), 3),
           ReportTable::FormatDouble(
               FilterAccuracy(*exact, exact_scores, eligible, eta), 3)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
