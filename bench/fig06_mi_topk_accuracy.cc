// Figure 6 reproduction: empirical mutual information top-k accuracy vs
// k, averaged over random target attributes. The paper reports 100% for
// all methods at the default eps = 0.5.

#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/exact.h"
#include "src/baselines/mi_rank.h"
#include "src/core/entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/eval/accuracy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 6: MI top-k accuracy", config,
                     bench::kDefaultMiBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultMiBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << " (avg over " << config.targets
              << " targets)\n";
    const auto targets =
        bench::PickTargets(dataset.table, config.targets, config.seed);

    ReportTable table({"k", "SWOPE", "EntropyRank", "Exact"});
    for (size_t k : {1, 2, 4, 8, 10}) {
      double swope_acc = 0.0;
      double rank_acc = 0.0;
      double exact_acc = 0.0;
      for (size_t target : targets) {
        auto scores = ExactMutualInformations(dataset.table, target);
        if (!scores.ok()) std::exit(1);
        std::vector<size_t> eligible;
        for (size_t j = 0; j < dataset.table.num_columns(); ++j) {
          if (j != target) eligible.push_back(j);
        }
        QueryOptions options;
        options.epsilon = 0.5;
        options.seed = config.seed + target;
        options.sequential_sampling = true;
        auto swope = SwopeTopKMi(dataset.table, target, k, options);
        auto rank = MiRankTopK(dataset.table, target, k, options);
        auto exact = ExactTopKMi(dataset.table, target, k);
        if (!swope.ok() || !rank.ok() || !exact.ok()) std::exit(1);
        swope_acc += TopKAccuracy(swope->items, *scores, eligible, k);
        rank_acc += TopKAccuracy(rank->items, *scores, eligible, k);
        exact_acc += TopKAccuracy(exact->items, *scores, eligible, k);
      }
      const double n = static_cast<double>(targets.size());
      table.AddRow({std::to_string(k),
                    ReportTable::FormatDouble(swope_acc / n, 3),
                    ReportTable::FormatDouble(rank_acc / n, 3),
                    ReportTable::FormatDouble(exact_acc / n, 3)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
