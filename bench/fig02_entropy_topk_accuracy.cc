// Figure 2 reproduction: empirical entropy top-k accuracy vs k.
// Accuracy = tie-aware overlap with the exact top-k answer; the paper
// reports 100% for all three methods at the default eps = 0.1.

#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/entropy_rank.h"
#include "src/baselines/exact.h"
#include "src/core/entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "src/eval/accuracy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 2: entropy top-k accuracy", config,
                     bench::kDefaultBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << "\n";
    const auto exact_scores = ExactEntropies(dataset.table);
    std::vector<size_t> eligible(dataset.table.num_columns());
    for (size_t j = 0; j < eligible.size(); ++j) eligible[j] = j;

    ReportTable table({"k", "SWOPE", "EntropyRank", "Exact"});
    for (size_t k : {1, 2, 4, 8, 10}) {
      QueryOptions options;
      options.epsilon = 0.1;
      options.seed = config.seed;
      options.sequential_sampling = true;
      auto swope = SwopeTopKEntropy(dataset.table, k, options);
      auto rank = EntropyRankTopK(dataset.table, k, options);
      auto exact = ExactTopKEntropy(dataset.table, k);
      if (!swope.ok() || !rank.ok() || !exact.ok()) std::exit(1);
      table.AddRow(
          {std::to_string(k),
           ReportTable::FormatDouble(
               TopKAccuracy(swope->items, exact_scores, eligible, k), 3),
           ReportTable::FormatDouble(
               TopKAccuracy(rank->items, exact_scores, eligible, k), 3),
           ReportTable::FormatDouble(
               TopKAccuracy(exact->items, exact_scores, eligible, k), 3)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
