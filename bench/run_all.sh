#!/usr/bin/env bash
# Runs every reproduction bench in order and tees the combined output.
#
#   bench/run_all.sh [outfile] [extra flags passed to every bench]
#
# Example: bench/run_all.sh /tmp/bench.out --quick

set -u
BUILD_DIR="$(dirname "$0")/../build/bench"
OUT="${1:-bench_output.txt}"
shift || true

: > "$OUT"
for b in "$BUILD_DIR"/*; do
  [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a "$OUT"
  "$b" "$@" 2>&1 | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
