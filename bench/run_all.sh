#!/usr/bin/env bash
# Runs every reproduction bench in order and tees the combined output,
# then distills it into BENCH_results.json (per-figure timings and
# cells-scanned counts) via tools/bench_to_json.py.
#
#   bench/run_all.sh [outfile] [extra flags passed to every bench]
#
# Example: bench/run_all.sh /tmp/bench.out --quick

set -u
SCRIPT_DIR="$(dirname "$0")"
BUILD_DIR="$SCRIPT_DIR/../build/bench"
OUT="${1:-bench_output.txt}"
shift || true

: > "$OUT"
# Run metadata, parsed into BENCH_results.json alongside the benches:
# the host's core count plus the shard geometry and pool modes the
# serving benches compare (see bench/serve_throughput.cc).
{
  echo "===== run_metadata ====="
  echo "# Run metadata"
  echo "host_cores=$(nproc) serve_shard_size=2048 pool_modes=stealing,single-queue"
  echo
} | tee -a "$OUT"
for b in "$BUILD_DIR"/*; do
  # Executable regular files only: CMake drops CMakeFiles/ and other
  # directories (also "executable") into the same build dir.
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "===== $name =====" | tee -a "$OUT"
  if [ "$name" = "micro_kernels" ]; then
    # google-benchmark speaks --benchmark_* flags, not the figure
    # binaries' --quick/--rows; run it with its defaults so the
    # BM_* rows (incl. the BM_ProfileOverhead contract) always land
    # in BENCH_results.json.
    "$b" 2>&1 | tee -a "$OUT"
  else
    "$b" "$@" 2>&1 | tee -a "$OUT"
  fi
  echo | tee -a "$OUT"
done
echo "wrote $OUT"
# Repeat the core count at the end where it is hard to miss: on a 1-core
# host the serve_throughput pool-mode comparison is meaningless (both
# modes serialize), and bench_to_json.py annotates the JSON accordingly.
echo "host_cores=$(nproc)"

JSON="$(dirname "$OUT")/BENCH_results.json"
python3 "$SCRIPT_DIR/../tools/bench_to_json.py" "$OUT" -o "$JSON" \
  || echo "bench_to_json failed; text output is still in $OUT" >&2
