#!/usr/bin/env bash
# Runs every reproduction bench in order and tees the combined output,
# then distills it into BENCH_results.json (per-figure timings and
# cells-scanned counts) via tools/bench_to_json.py.
#
#   bench/run_all.sh [outfile] [extra flags passed to every bench]
#
# Example: bench/run_all.sh /tmp/bench.out --quick

set -u
SCRIPT_DIR="$(dirname "$0")"
BUILD_DIR="$SCRIPT_DIR/../build/bench"
OUT="${1:-bench_output.txt}"
shift || true

: > "$OUT"
# Run metadata, parsed into BENCH_results.json alongside the benches:
# the host's core count plus the shard geometry and pool modes the
# serving benches compare (see bench/serve_throughput.cc).
{
  echo "===== run_metadata ====="
  echo "# Run metadata"
  echo "host_cores=$(nproc) serve_shard_size=2048 pool_modes=stealing,single-queue"
  echo
} | tee -a "$OUT"
for b in "$BUILD_DIR"/*; do
  # Executable regular files only: CMake drops CMakeFiles/ and other
  # directories (also "executable") into the same build dir.
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a "$OUT"
  "$b" "$@" 2>&1 | tee -a "$OUT"
  echo | tee -a "$OUT"
done
echo "wrote $OUT"

JSON="$(dirname "$OUT")/BENCH_results.json"
python3 "$SCRIPT_DIR/../tools/bench_to_json.py" "$OUT" -o "$JSON" \
  || echo "bench_to_json failed; text output is still in $OUT" >&2
