// Shared helpers for the figure-reproduction bench binaries.
//
// Every binary accepts --rows= --reps= --targets= --seed= --quick (see
// eval/experiment.h) and prints one markdown table per dataset with the
// same series the corresponding paper figure plots.

#ifndef SWOPE_BENCH_BENCH_UTIL_H_
#define SWOPE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/datagen/dataset_presets.h"
#include "src/eval/experiment.h"
#include "src/eval/report.h"
#include "src/obs/profiler.h"
#include "src/table/table.h"

namespace swope {
namespace bench {

/// Default row count for the scaled-down presets used by the bench
/// binaries (the paper's datasets have 3.7M-33.7M rows; see DESIGN.md).
/// The SWOPE-vs-baseline gap grows with N -- the sampling algorithms'
/// costs are roughly N-independent while the exact-answer baselines scan
/// O(N) -- so benches default to the largest size that keeps the whole
/// suite comfortable on a laptop. Use --rows= to rescale.
inline constexpr uint64_t kDefaultBenchRows = 2000000;
/// MI benches: the MI stopping rules need roughly 200k-500k samples on
/// census-like MI levels regardless of N, so the SWOPE-vs-baseline gap
/// only shows at N well past that; 2M is the smallest size where the
/// paper's shape is visible while keeping the suite laptop friendly.
inline constexpr uint64_t kDefaultMiBenchRows = 2000000;

/// A materialized bench dataset.
struct BenchDataset {
  std::string name;
  Table table;
};

/// Builds all four paper presets at the configured scale, applying the
/// paper's support-size <= 1000 preprocessing. Exits on generation errors
/// (bench binaries have no caller to propagate to).
inline std::vector<BenchDataset> BuildAllPresets(const BenchConfig& config,
                                                 uint64_t default_rows) {
  std::vector<BenchDataset> datasets;
  for (DatasetPreset preset : AllDatasetPresets()) {
    const PresetInfo info = GetPresetInfo(preset);
    auto table =
        MakePresetTable(preset, config.RowsOrDefault(default_rows),
                        config.seed);
    if (!table.ok()) {
      std::fprintf(stderr, "failed to build preset %s: %s\n",
                   info.name.c_str(), table.status().ToString().c_str());
      std::exit(1);
    }
    datasets.push_back({info.name,
                        table->DropHighSupportColumns(1000)});
  }
  return datasets;
}

/// Deterministic target-attribute choices for the MI benches: spread
/// across the column range, `count` of them.
inline std::vector<size_t> PickTargets(const Table& table, int count,
                                       uint64_t seed) {
  std::vector<size_t> targets;
  const size_t h = table.num_columns();
  if (h == 0) return targets;
  for (int i = 0; i < count; ++i) {
    targets.push_back((seed + 1 + static_cast<size_t>(i) * 37) % h);
  }
  return targets;
}

/// Prints one query's stage breakdown as its own `## <dataset>-stages`
/// section (no parentheses in the heading: tools/bench_to_json.py strips
/// a trailing parenthesized note, and these sections must parse as
/// distinct datasets). One row per recorded stage plus a stage-sum row;
/// the `share` column is each stage's fraction of the stage sum.
inline void PrintStageBreakdown(const std::string& dataset_name,
                                const StageProfiler& profiler) {
  std::cout << "## " << dataset_name << "-stages\n";
  ReportTable table({"stage", "calls", "ms", "share"});
  const double sum_ms = profiler.StageSumMs();
  char buffer[64];
  for (int i = 0; i < kNumStages; ++i) {
    const Stage stage = static_cast<Stage>(i);
    const uint64_t calls = profiler.StageCalls(stage);
    if (calls == 0) continue;
    const double ms = profiler.StageMs(stage);
    std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
    std::string ms_text = buffer;
    std::snprintf(buffer, sizeof(buffer), "%.1f%%",
                  sum_ms > 0 ? 100.0 * ms / sum_ms : 0.0);
    table.AddRow({StageName(stage), std::to_string(calls),
                  std::move(ms_text), buffer});
  }
  std::snprintf(buffer, sizeof(buffer), "%.3f", sum_ms);
  table.AddRow({"stage-sum", "", buffer, "100.0%"});
  table.PrintMarkdown(std::cout);
  std::cout << "\n";
}

/// Prints the standard bench banner.
inline void PrintBanner(const std::string& title, const BenchConfig& config,
                        uint64_t default_rows) {
  std::cout << "# " << title << "\n";
  std::cout << "rows=" << config.RowsOrDefault(default_rows)
            << " reps=" << config.reps << " targets=" << config.targets
            << " seed=" << config.seed
            << (config.quick ? " (quick)" : "") << "\n\n";
}

}  // namespace bench
}  // namespace swope

#endif  // SWOPE_BENCH_BENCH_UTIL_H_
