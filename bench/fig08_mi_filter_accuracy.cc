// Figure 8 reproduction: empirical mutual information filtering accuracy
// vs eta, averaged over random target attributes. The paper reports
// identical (100%) accuracy for all methods at eps = 0.5.

#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/exact.h"
#include "src/baselines/mi_filter.h"
#include "src/core/entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/eval/accuracy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 8: MI filtering accuracy", config,
                     bench::kDefaultMiBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultMiBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << " (avg over " << config.targets
              << " targets)\n";
    const auto targets =
        bench::PickTargets(dataset.table, config.targets, config.seed);

    ReportTable table({"eta", "SWOPE", "EntropyFilter", "Exact"});
    for (double eta : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      double swope_acc = 0.0;
      double filter_acc = 0.0;
      double exact_acc = 0.0;
      for (size_t target : targets) {
        auto scores = ExactMutualInformations(dataset.table, target);
        if (!scores.ok()) std::exit(1);
        std::vector<size_t> eligible;
        for (size_t j = 0; j < dataset.table.num_columns(); ++j) {
          if (j != target) eligible.push_back(j);
        }
        QueryOptions options;
        options.epsilon = 0.5;
        options.seed = config.seed + target;
        options.sequential_sampling = true;
        auto swope = SwopeFilterMi(dataset.table, target, eta, options);
        auto baseline = MiFilterQuery(dataset.table, target, eta, options);
        auto exact = ExactFilterMi(dataset.table, target, eta);
        if (!swope.ok() || !baseline.ok() || !exact.ok()) std::exit(1);
        swope_acc += FilterAccuracy(*swope, *scores, eligible, eta);
        filter_acc += FilterAccuracy(*baseline, *scores, eligible, eta);
        exact_acc += FilterAccuracy(*exact, *scores, eligible, eta);
      }
      const double n = static_cast<double>(targets.size());
      table.AddRow({ReportTable::FormatDouble(eta, 1),
                    ReportTable::FormatDouble(swope_acc / n, 3),
                    ReportTable::FormatDouble(filter_acc / n, 3),
                    ReportTable::FormatDouble(exact_acc / n, 3)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
