// Closed-loop serve latency: one client issuing entropy top-k and MI
// top-k queries back-to-back against a QueryEngine, comparing owned
// (heap-resident) storage with mmap-loaded SWPB columns. Both runs use
// the pooled per-query arena (always on), so after the warmup queries
// the core path allocates nothing and the p50/p99 gap isolates the
// storage difference: borrowed words faulted from the page cache versus
// heap-resident words. Caching is disabled so every query executes.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/engine/query_engine.h"
#include "src/eval/report.h"
#include "src/table/binary_io.h"

namespace swope {
namespace {

struct LatencyResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  uint64_t resident_bytes = 0;
  uint64_t mapped_bytes = 0;
};

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size())));
  return sorted_ms[index];
}

// One engine, one closed-loop client: `warmup` unmeasured queries (they
// size the pooled arena and fault in the mapped pages), then `measured`
// timed ones.
LatencyResult RunClosedLoop(const std::string& path, bool mmap,
                            QueryKind kind, int warmup, int measured) {
  EngineConfig config;
  config.num_threads = 1;
  config.result_cache_capacity = 0;
  QueryEngine engine(config);
  if (!engine
           .RegisterDatasetFile("d", path, /*max_support=*/0,
                                /*sketch_epsilon=*/0.0,
                                /*sketch_threshold=*/1000, mmap)
           .ok()) {
    std::exit(1);
  }

  auto run_one = [&engine, kind](uint64_t seed) {
    QuerySpec spec;
    spec.dataset = "d";
    spec.kind = kind;
    spec.k = 4;
    if (kind == QueryKind::kMiTopK) spec.target = "0";
    spec.options.seed = seed;
    Stopwatch latency;
    if (!engine.Run(spec).ok()) std::exit(1);
    return latency.ElapsedMillis();
  };

  for (int i = 0; i < warmup; ++i) run_one(1 + static_cast<uint64_t>(i));
  std::vector<double> latencies;
  Stopwatch wall;
  for (int i = 0; i < measured; ++i) {
    latencies.push_back(run_one(1000 + static_cast<uint64_t>(i)));
  }
  const double wall_seconds = wall.ElapsedSeconds();

  std::sort(latencies.begin(), latencies.end());
  LatencyResult result;
  result.p50_ms = Percentile(latencies, 0.50);
  result.p99_ms = Percentile(latencies, 0.99);
  result.qps = static_cast<double>(latencies.size()) / wall_seconds;
  const DatasetRegistry::Stats stats = engine.registry().GetStats();
  result.resident_bytes = stats.resident_bytes;
  result.mapped_bytes = stats.mapped_bytes;
  return result;
}

std::string FormatMib(uint64_t bytes) {
  return ReportTable::FormatDouble(
             static_cast<double>(bytes) / (1024.0 * 1024.0), 2) +
         " MiB";
}

void Run(const BenchConfig& config) {
  const uint64_t rows = config.RowsOrDefault(200000);
  std::cout << "# Serve latency: owned vs mmap-loaded storage "
               "(closed loop, pooled query memory)\n";
  std::cout << "rows=" << rows << " reps=" << config.reps
            << " seed=" << config.seed
            << (config.quick ? " (quick)" : "") << "\n\n";

  auto made = MakePresetTable(DatasetPreset::kCdc, rows, config.seed);
  if (!made.ok()) std::exit(1);
  const Table table = made->DropHighSupportColumns(1000);
  const std::string path =
      "/tmp/swope_serve_latency_" + std::to_string(config.seed) + ".swpb";
  if (!WriteBinaryTableFile(table, path).ok()) std::exit(1);

  const int warmup = 2;
  const int measured = config.quick ? 8 : 32;

  std::cout << "## cdc\n\n";
  ReportTable report({"query", "storage", "resident", "mapped", "p50 (ms)",
                      "p99 (ms)", "QPS"});
  struct KindRow {
    QueryKind kind;
    const char* name;
  };
  for (const KindRow& kr : {KindRow{QueryKind::kEntropyTopK, "entropy-top4"},
                            KindRow{QueryKind::kMiTopK, "mi-top4"}}) {
    for (const bool mmap : {false, true}) {
      const LatencyResult r =
          RunClosedLoop(path, mmap, kr.kind, warmup, measured);
      report.AddRow({kr.name, mmap ? "mapped" : "owned",
                     FormatMib(r.resident_bytes), FormatMib(r.mapped_bytes),
                     ReportTable::FormatDouble(r.p50_ms, 3),
                     ReportTable::FormatDouble(r.p99_ms, 3),
                     ReportTable::FormatDouble(r.qps, 1)});
    }
  }
  report.PrintMarkdown(std::cout);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
