// Figure 9 reproduction: tuning eps for entropy top-k queries (k = 4).
// (a) running time and (b) accuracy as eps sweeps
// {0.01, 0.025, 0.05, 0.1, 0.25, 0.5}. The paper picks eps = 0.1 as the
// default because accuracy degrades past it.

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/entropy.h"
#include "src/core/swope_topk_entropy.h"
#include "src/eval/accuracy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

constexpr size_t kK = 4;

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 9: tuning eps, entropy top-k (k = 4)", config,
                     bench::kDefaultBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << "\n";
    const auto exact_scores = ExactEntropies(dataset.table);
    std::vector<size_t> eligible(dataset.table.num_columns());
    for (size_t j = 0; j < eligible.size(); ++j) eligible[j] = j;

    ReportTable table({"eps", "time (ms)", "accuracy", "samples"});
    for (double eps : {0.01, 0.025, 0.05, 0.1, 0.25, 0.5}) {
      QueryOptions options;
      options.epsilon = eps;
      options.seed = config.seed;
      options.sequential_sampling = true;
      Result<TopKResult> last(Status::Internal("unset"));
      const Timing timing = TimeRepeated(config.reps, [&] {
        last = SwopeTopKEntropy(dataset.table, kK, options);
        if (!last.ok()) std::exit(1);
      });
      table.AddRow(
          {ReportTable::FormatDouble(eps, 3),
           ReportTable::FormatMillis(timing.mean_seconds),
           ReportTable::FormatDouble(
               TopKAccuracy(last->items, exact_scores, eligible, kK), 3),
           std::to_string(last->stats.final_sample_size)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
