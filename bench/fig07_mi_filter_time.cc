// Figure 7 reproduction: empirical mutual information filtering query
// time vs eta, averaged over random target attributes.
// Series: SWOPE (eps = 0.5, the paper's default), EntropyFilter-MI,
// Exact.

#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/exact.h"
#include "src/baselines/mi_filter.h"
#include "src/core/swope_filter_mi.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 7: MI filtering query time (ms)", config,
                     bench::kDefaultMiBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultMiBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << " (avg over " << config.targets
              << " targets)\n";
    const auto targets =
        bench::PickTargets(dataset.table, config.targets, config.seed);
    double exact_total = 0.0;
    for (size_t target : targets) {
      exact_total += TimeRepeated(config.reps, [&] {
                       auto result =
                           ExactFilterMi(dataset.table, target, 0.1);
                       if (!result.ok()) std::exit(1);
                     }).mean_seconds;
    }
    const double exact_mean =
        exact_total / static_cast<double>(targets.size());

    ReportTable table({"eta", "SWOPE", "EntropyFilter", "Exact",
                       "SWOPE vs Filter", "SWOPE vs Exact", "SWOPE cells"});
    for (double eta : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      double swope_total = 0.0;
      double filter_total = 0.0;
      uint64_t swope_cells = 0;  // summed over targets, like the times
      for (size_t target : targets) {
        QueryOptions options;
        options.epsilon = 0.5;
        options.seed = config.seed + target;
        options.sequential_sampling = true;
        uint64_t target_cells = 0;
        swope_total +=
            TimeRepeated(config.reps, [&] {
              auto result =
                  SwopeFilterMi(dataset.table, target, eta, options);
              if (!result.ok()) std::exit(1);
              target_cells = result->stats.cells_scanned;
            }).mean_seconds;
        swope_cells += target_cells;
        filter_total +=
            TimeRepeated(config.reps, [&] {
              auto result =
                  MiFilterQuery(dataset.table, target, eta, options);
              if (!result.ok()) std::exit(1);
            }).mean_seconds;
      }
      const double swope_mean =
          swope_total / static_cast<double>(targets.size());
      const double filter_mean =
          filter_total / static_cast<double>(targets.size());
      table.AddRow({ReportTable::FormatDouble(eta, 1),
                    ReportTable::FormatMillis(swope_mean),
                    ReportTable::FormatMillis(filter_mean),
                    ReportTable::FormatMillis(exact_mean),
                    FormatSpeedup(filter_mean, swope_mean),
                    FormatSpeedup(exact_mean, swope_mean),
                    std::to_string(swope_cells)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
