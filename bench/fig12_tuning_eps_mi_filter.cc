// Figure 12 reproduction: tuning eps for MI filtering (eta = 0.3),
// averaged over random targets. The paper reports 100% accuracy at every
// eps and picks eps = 0.5.

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/eval/accuracy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

constexpr double kEta = 0.3;

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 12: tuning eps, MI filtering (eta = 0.3)",
                     config, bench::kDefaultMiBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultMiBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << " (avg over " << config.targets
              << " targets)\n";
    const auto targets =
        bench::PickTargets(dataset.table, config.targets, config.seed);

    ReportTable table({"eps", "time (ms)", "accuracy"});
    for (double eps : {0.01, 0.025, 0.05, 0.1, 0.25, 0.5}) {
      double time_total = 0.0;
      double acc_total = 0.0;
      for (size_t target : targets) {
        auto scores = ExactMutualInformations(dataset.table, target);
        if (!scores.ok()) std::exit(1);
        std::vector<size_t> eligible;
        for (size_t j = 0; j < dataset.table.num_columns(); ++j) {
          if (j != target) eligible.push_back(j);
        }
        QueryOptions options;
        options.epsilon = eps;
        options.seed = config.seed + target;
        options.sequential_sampling = true;
        Result<FilterResult> last(Status::Internal("unset"));
        time_total += TimeRepeated(config.reps, [&] {
                        last = SwopeFilterMi(dataset.table, target, kEta,
                                             options);
                        if (!last.ok()) std::exit(1);
                      }).mean_seconds;
        acc_total += FilterAccuracy(*last, *scores, eligible, kEta);
      }
      const double n = static_cast<double>(targets.size());
      table.AddRow({ReportTable::FormatDouble(eps, 3),
                    ReportTable::FormatMillis(time_total / n),
                    ReportTable::FormatDouble(acc_total / n, 3)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
