// Figure 1 reproduction: empirical entropy top-k query time vs k.
// Series: SWOPE (eps = 0.1, the paper's default), EntropyRank, Exact.

#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/entropy_rank.h"
#include "src/baselines/exact.h"
#include "src/core/swope_topk_entropy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 1: entropy top-k query time (ms)", config,
                     bench::kDefaultBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << "\n";
    ReportTable table(
        {"k", "SWOPE", "EntropyRank", "Exact", "SWOPE vs Rank",
         "SWOPE vs Exact", "SWOPE cells"});
    // The exact scan does not depend on k; time it once.
    const Timing exact_time = TimeRepeated(config.reps, [&] {
      auto result = ExactTopKEntropy(dataset.table, 1);
      if (!result.ok()) std::exit(1);
    });
    for (size_t k : {1, 2, 4, 8, 10}) {
      QueryOptions options;
      options.epsilon = 0.1;
      options.seed = config.seed;
      options.sequential_sampling = true;
      // Deterministic per (dataset, options): every rep scans the same
      // cells, so capturing the last rep's count is exact.
      uint64_t swope_cells = 0;
      const Timing swope_time = TimeRepeated(config.reps, [&] {
        auto result = SwopeTopKEntropy(dataset.table, k, options);
        if (!result.ok()) std::exit(1);
        swope_cells = result->stats.cells_scanned;
      });
      const Timing rank_time = TimeRepeated(config.reps, [&] {
        auto result = EntropyRankTopK(dataset.table, k, options);
        if (!result.ok()) std::exit(1);
      });
      table.AddRow(
          {std::to_string(k), ReportTable::FormatMillis(swope_time.mean_seconds),
           ReportTable::FormatMillis(rank_time.mean_seconds),
           ReportTable::FormatMillis(exact_time.mean_seconds),
           FormatSpeedup(rank_time.mean_seconds, swope_time.mean_seconds),
           FormatSpeedup(exact_time.mean_seconds, swope_time.mean_seconds),
           std::to_string(swope_cells)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";

    // Where the time goes: one profiled run at the paper's default
    // setting (k = 8) per dataset, recorded into BENCH_results.json as
    // its own `<dataset>-stages` section.
    QueryOptions profiled;
    profiled.epsilon = 0.1;
    profiled.seed = config.seed;
    profiled.sequential_sampling = true;
    StageProfiler profiler;
    profiled.profiler = &profiler;
    if (!SwopeTopKEntropy(dataset.table, 8, profiled).ok()) std::exit(1);
    bench::PrintStageBreakdown(dataset.name, profiler);
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
