// Ablation: initial sample size policy. Compares the paper's M0 formula
// (Theorem 2's lower bound evaluated at the maximum possible score)
// against fixed under- and over-shoots, on entropy top-k.

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/bounds.h"
#include "src/core/swope_topk_entropy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Ablation: M0 policy (entropy top-k, k=4, eps=0.1)",
                     config, bench::kDefaultBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << "\n";
    const uint64_t n = dataset.table.num_rows();
    const uint64_t paper_m0 =
        ComputeM0(n, dataset.table.num_columns(), 1.0 / static_cast<double>(n),
                  dataset.table.MaxSupport());
    struct Policy {
      std::string label;
      uint64_t m0;  // 0 = paper formula
    };
    const Policy policies[] = {{"paper formula (" + std::to_string(paper_m0) +
                                    ")",
                                0},
                               {"tiny (16)", 16},
                               {"small (256)", 256},
                               {"large (N/16)", n / 16},
                               {"huge (N/2)", n / 2}};

    ReportTable table({"M0 policy", "time (ms)", "samples", "iterations"});
    for (const Policy& policy : policies) {
      QueryOptions options;
      options.epsilon = 0.1;
      options.seed = config.seed;
      options.sequential_sampling = true;
      options.initial_sample_size = policy.m0;
      Result<TopKResult> result(Status::Internal("unset"));
      const Timing timing = TimeRepeated(config.reps, [&] {
        result = SwopeTopKEntropy(dataset.table, 4, options);
        if (!result.ok()) std::exit(1);
      });
      table.AddRow({policy.label,
                    ReportTable::FormatMillis(timing.mean_seconds),
                    std::to_string(result->stats.final_sample_size),
                    std::to_string(result->stats.iterations)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
