// Figure 3 reproduction: empirical entropy filtering query time vs eta.
// Series: SWOPE (eps = 0.05, the paper's default), EntropyFilter, Exact.

#include <iostream>

#include "bench/bench_util.h"
#include "src/baselines/entropy_filter.h"
#include "src/baselines/exact.h"
#include "src/core/swope_filter_entropy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Figure 3: entropy filtering query time (ms)", config,
                     bench::kDefaultBenchRows);
  const auto datasets =
      bench::BuildAllPresets(config, bench::kDefaultBenchRows);

  for (const auto& dataset : datasets) {
    std::cout << "## " << dataset.name << "\n";
    ReportTable table({"eta", "SWOPE", "EntropyFilter", "Exact",
                       "SWOPE vs Filter", "SWOPE vs Exact", "SWOPE cells"});
    const Timing exact_time = TimeRepeated(config.reps, [&] {
      auto result = ExactFilterEntropy(dataset.table, 1.0);
      if (!result.ok()) std::exit(1);
    });
    for (double eta : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
      QueryOptions options;
      options.epsilon = 0.05;
      options.seed = config.seed;
      options.sequential_sampling = true;
      uint64_t swope_cells = 0;
      const Timing swope_time = TimeRepeated(config.reps, [&] {
        auto result = SwopeFilterEntropy(dataset.table, eta, options);
        if (!result.ok()) std::exit(1);
        swope_cells = result->stats.cells_scanned;
      });
      const Timing filter_time = TimeRepeated(config.reps, [&] {
        auto result = EntropyFilterQuery(dataset.table, eta, options);
        if (!result.ok()) std::exit(1);
      });
      table.AddRow(
          {ReportTable::FormatDouble(eta, 1),
           ReportTable::FormatMillis(swope_time.mean_seconds),
           ReportTable::FormatMillis(filter_time.mean_seconds),
           ReportTable::FormatMillis(exact_time.mean_seconds),
           FormatSpeedup(filter_time.mean_seconds, swope_time.mean_seconds),
           FormatSpeedup(exact_time.mean_seconds, swope_time.mean_seconds),
           std::to_string(swope_cells)});
    }
    table.PrintMarkdown(std::cout);
    std::cout << "\n";
  }
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
