// Table 2 reproduction: summary of the four evaluation datasets — the
// paper's shapes next to the synthetic stand-ins actually materialized
// here (see DESIGN.md for the substitution rationale).

#include <iostream>

#include "bench/bench_util.h"
#include "src/core/entropy.h"
#include "src/eval/report.h"

namespace swope {
namespace {

void Run(const BenchConfig& config) {
  bench::PrintBanner("Table 2: summary of datasets", config,
                     bench::kDefaultBenchRows);
  ReportTable table({"dataset", "paper rows", "paper cols", "bench rows",
                     "bench cols", "max support", "mean H (bits)",
                     "max H (bits)"});
  for (DatasetPreset preset : AllDatasetPresets()) {
    const PresetInfo info = GetPresetInfo(preset);
    auto made = MakePresetTable(
        preset, config.RowsOrDefault(bench::kDefaultBenchRows), config.seed);
    if (!made.ok()) {
      std::cerr << made.status().ToString() << "\n";
      std::exit(1);
    }
    const Table pruned = made->DropHighSupportColumns(1000);
    const auto entropies = ExactEntropies(pruned);
    double sum = 0.0;
    double max_h = 0.0;
    for (double h : entropies) {
      sum += h;
      max_h = std::max(max_h, h);
    }
    table.AddRow({info.name, std::to_string(info.paper_rows),
                  std::to_string(info.num_columns),
                  std::to_string(pruned.num_rows()),
                  std::to_string(pruned.num_columns()),
                  std::to_string(pruned.MaxSupport()),
                  ReportTable::FormatDouble(sum / static_cast<double>(entropies.size()), 2),
                  ReportTable::FormatDouble(max_h, 2)});
  }
  table.PrintMarkdown(std::cout);
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) {
  swope::Run(swope::BenchConfig::FromArgs(argc, argv));
  return 0;
}
