"""Tests for tools/lint.py: every rule shown firing on a violation,
staying quiet on compliant code, and honouring its NOLINT escape.

Run directly (`python3 tools/lint_test.py`) or via ctest
(`ctest -R lint_test`).
"""

from __future__ import annotations

import os
import pathlib
import shutil
import sys
import tempfile
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint

GUARDED_HEADER = """\
#ifndef SWOPE_{guard}_
#define SWOPE_{guard}_
{body}
#endif  // SWOPE_{guard}_
"""


class LintFileTest(unittest.TestCase):
    def setUp(self):
        self.root = pathlib.Path(tempfile.mkdtemp(prefix="swope_lint_test_"))
        self.addCleanup(shutil.rmtree, self.root, ignore_errors=True)

    def lint(self, relpath, content):
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
        return lint.lint_file(self.root, pathlib.Path(relpath))

    def lint_header(self, relpath, body):
        guard = (
            relpath[len("src/"):] if relpath.startswith("src/") else relpath)
        guard = "".join(c if c.isalnum() else "_" for c in guard).upper()
        return self.lint(relpath, GUARDED_HEADER.format(guard=guard, body=body))

    def rules(self, findings):
        return sorted({rule for _, _, rule, _ in findings})

    # ---- include-guard ----------------------------------------------------

    def test_include_guard_ok(self):
        self.assertEqual([], self.lint_header("src/common/foo.h", "int x;"))

    def test_include_guard_wrong_name(self):
        findings = self.lint(
            "src/common/foo.h",
            "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n")
        self.assertEqual(["include-guard"], self.rules(findings))
        self.assertIn("SWOPE_COMMON_FOO_H_", findings[0][3])

    def test_include_guard_missing_define(self):
        findings = self.lint(
            "src/common/foo.h",
            "#ifndef SWOPE_COMMON_FOO_H_\nint x;\n#endif\n")
        self.assertEqual(["include-guard"], self.rules(findings))

    # ---- using-namespace --------------------------------------------------

    def test_using_namespace_fires_in_headers_only(self):
        findings = self.lint_header("src/common/ns.h", "using namespace std;")
        self.assertEqual(["using-namespace"], self.rules(findings))
        self.assertEqual([], self.lint("src/common/ns.cc",
                                       "using namespace std;\n"))

    def test_using_namespace_nolint(self):
        findings = self.lint_header(
            "src/common/ns.h", "using namespace std;  // NOLINT")
        self.assertEqual([], findings)

    # ---- naked-new --------------------------------------------------------

    def test_naked_new_and_delete_fire(self):
        self.assertEqual(["naked-new"], self.rules(
            self.lint("src/common/a.cc", "int* p = new int(3);\n")))
        self.assertEqual(["naked-new"], self.rules(
            self.lint("src/common/b.cc", "void F(int* p) { delete p; }\n")))

    def test_defaulted_and_deleted_functions_are_fine(self):
        self.assertEqual([], self.lint(
            "src/common/c.cc",
            "struct S { S(const S&) = delete; S() = default; };\n"))

    def test_naked_new_nolint_escape(self):
        self.assertEqual([], self.lint(
            "src/common/d.cc",
            "static int* p = new int(3);"
            "  // NOLINT(swope-naked-new): leaky singleton\n"))

    # ---- banned-rand ------------------------------------------------------

    def test_banned_rand(self):
        self.assertEqual(["banned-rand"], self.rules(
            self.lint("src/common/r.cc", "int x = rand();\n")))
        self.assertEqual([], self.lint(
            "src/common/r2.cc", "int x = my_rand();\n"))

    # ---- banned-sleep -----------------------------------------------------

    def test_banned_sleep_fires_in_src_only(self):
        body = "void F() { std::this_thread::sleep_for(d); }\n"
        self.assertEqual(["banned-sleep"], self.rules(
            self.lint("src/common/s.cc", body)))
        self.assertEqual([], self.lint("tests/s_test.cc", body))

    # ---- banned-clock -----------------------------------------------------

    def test_banned_clock_catches_steady_and_system(self):
        self.assertEqual(["banned-clock"], self.rules(self.lint(
            "src/core/t.cc",
            "auto t = std::chrono::steady_clock::now();\n")))
        self.assertEqual(["banned-clock"], self.rules(self.lint(
            "src/core/u.cc",
            "auto t = std::chrono::system_clock::now();\n")))

    def test_banned_clock_exempts_stopwatch_and_obs(self):
        body = "auto t = std::chrono::steady_clock::now();\n"
        for relpath in ("src/obs/clockuser.cc",):
            self.assertEqual([], self.lint(relpath, body))
        stopwatch = GUARDED_HEADER.format(
            guard="COMMON_STOPWATCH_H", body=body.strip())
        self.assertEqual([], self.lint("src/common/stopwatch.h", stopwatch))

    def test_banned_clock_nolintnextline(self):
        self.assertEqual([], self.lint(
            "src/core/v.cc",
            "// NOLINTNEXTLINE\n"
            "auto t = std::chrono::system_clock::now();\n"))

    # ---- core-layering ----------------------------------------------------

    def test_core_internal_include_fires_outside_core(self):
        body = '#include "src/core/scorers.h"\n'
        findings = self.lint("src/engine/e.cc", body)
        self.assertEqual(["core-layering"], self.rules(findings))
        self.assertEqual([], self.lint("src/core/c.cc", body))

    # ---- raw-codes --------------------------------------------------------

    def test_raw_codes_fires_outside_table_and_tests(self):
        body = "auto v = col.codes();\n"
        self.assertEqual(["raw-codes"], self.rules(
            self.lint("src/core/w.cc", body)))
        self.assertEqual([], self.lint("src/table/w.cc", body))
        self.assertEqual([], self.lint("tests/w_test.cc", body))

    # ---- src/sketch coverage ----------------------------------------------
    # The sketch subsystem is linted like every other src/ dir: guards
    # derive from the path, and it gets no raw-codes exemption (sketch
    # builders must batch-decode through ColumnView like the scorers).

    def test_sketch_include_guard_derives_from_path(self):
        self.assertEqual([], self.lint_header("src/sketch/count_min.h",
                                              "int x;"))
        findings = self.lint(
            "src/sketch/count_min.h",
            "#ifndef SWOPE_COUNT_MIN_H_\n#define SWOPE_COUNT_MIN_H_\n"
            "#endif\n")
        self.assertEqual(["include-guard"], self.rules(findings))
        self.assertIn("SWOPE_SKETCH_COUNT_MIN_H_", findings[0][3])

    def test_sketch_dir_is_not_raw_codes_exempt(self):
        body = "auto v = col.codes();\n"
        self.assertEqual(["raw-codes"], self.rules(
            self.lint("src/sketch/provider.cc", body)))

    def test_sketch_dir_bans_rand_and_sleep(self):
        self.assertEqual(["banned-rand"], self.rules(
            self.lint("src/sketch/h.cc", "uint64_t h = rand();\n")))
        self.assertEqual(["banned-sleep"], self.rules(self.lint(
            "src/sketch/w.cc",
            "void F() { std::this_thread::sleep_for(d); }\n")))

    # ---- comment/string stripping -----------------------------------------

    def test_rules_ignore_comments_and_strings(self):
        self.assertEqual([], self.lint(
            "src/common/x.cc",
            '// int* p = new int(3);\n'
            'const char* s = "rand()";\n'))


class MainTest(unittest.TestCase):
    def setUp(self):
        self.root = pathlib.Path(tempfile.mkdtemp(prefix="swope_lint_main_"))
        self.addCleanup(shutil.rmtree, self.root, ignore_errors=True)

    def test_exit_codes(self):
        bad = self.root / "src" / "common" / "bad.cc"
        bad.parent.mkdir(parents=True)
        bad.write_text("int x = rand();\n", encoding="utf-8")
        self.assertEqual(1, lint.main(["--root", str(self.root), str(bad)]))
        bad.write_text("int x = 0;\n", encoding="utf-8")
        self.assertEqual(0, lint.main(["--root", str(self.root), str(bad)]))
        self.assertEqual(
            2, lint.main(["--root", str(self.root), str(self.root / "no.cc")]))

    def test_repo_is_clean(self):
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        self.assertEqual(0, lint.main(["--root", str(repo_root)]))


if __name__ == "__main__":
    unittest.main()
