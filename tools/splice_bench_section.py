#!/usr/bin/env python3
"""Replace one bench's section inside a combined bench_output.txt.

Usage: splice_bench_section.py <combined_file> <bench_name> <new_section_file>

Sections are delimited by the '===== name =====' banners run_all-style
loops emit. Used to refresh a single bench's results without re-running
the whole suite.
"""

import sys


def main() -> int:
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    combined_path, name, section_path = sys.argv[1:]
    with open(combined_path) as f:
        lines = f.readlines()
    with open(section_path) as f:
        body = f.read().rstrip("\n") + "\n\n"

    banner = f"===== {name} =====\n"
    try:
        start = lines.index(banner)
    except ValueError:
        print(f"no section '{name}' in {combined_path}", file=sys.stderr)
        return 1
    end = start + 1
    while end < len(lines) and not lines[end].startswith("====="):
        end += 1
    lines[start + 1 : end] = [body]
    with open(combined_path, "w") as f:
        f.writelines(lines)
    print(f"replaced section '{name}'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
