"""Loads and validates tools/analyze/layers.toml.

The declared layer graph itself must be a DAG over known layer names;
configuration errors are raised as ConfigError (exit code 2 in the CLI)
so they are never confused with findings about the source tree.
"""

from __future__ import annotations

import os
import tomllib
from dataclasses import dataclass


class ConfigError(Exception):
    pass


@dataclass(frozen=True)
class Layer:
    name: str
    path: str  # directory prefix, '/'-separated, no trailing slash
    deps: frozenset  # layer names; the sentinel "*" allows everything


@dataclass(frozen=True)
class Exception_:
    file: str
    include: str
    reason: str


@dataclass(frozen=True)
class LayersConfig:
    layers: dict  # name -> Layer
    exceptions: frozenset  # {(file, include)}

    def layer_of(self, path: str):
        """Longest-prefix match of `path` against the declared layer dirs.

        A layer whose path is a parent directory only claims files that no
        deeper layer claims (so "src" means "directly under src/" once
        "src/common" etc. exist). Returns None for unlayered files.
        """
        best = None
        for layer in self.layers.values():
            if path.startswith(layer.path + "/"):
                if best is None or len(layer.path) > len(best.path):
                    best = layer
        return best


def load(path: str) -> LayersConfig:
    if not os.path.isfile(path):
        raise ConfigError(f"layer config not found: {path}")
    with open(path, "rb") as f:
        try:
            raw = tomllib.load(f)
        except tomllib.TOMLDecodeError as e:
            raise ConfigError(f"{path}: {e}") from e

    layers_raw = raw.get("layers")
    if not isinstance(layers_raw, dict) or not layers_raw:
        raise ConfigError(f"{path}: missing [layers.*] tables")

    layers = {}
    for name, body in layers_raw.items():
        if not isinstance(body, dict) or "path" not in body:
            raise ConfigError(f"{path}: layer '{name}' needs a path")
        deps = body.get("deps", [])
        if not isinstance(deps, list):
            raise ConfigError(f"{path}: layer '{name}': deps must be a list")
        layers[name] = Layer(
            name=name,
            path=str(body["path"]).rstrip("/"),
            deps=frozenset(str(d) for d in deps),
        )

    for layer in layers.values():
        for dep in layer.deps:
            if dep != "*" and dep not in layers:
                raise ConfigError(
                    f"{path}: layer '{layer.name}' depends on unknown "
                    f"layer '{dep}'"
                )

    _check_dag(path, layers)

    exceptions = set()
    for entry in raw.get("exceptions", []):
        if not isinstance(entry, dict) or "file" not in entry or "include" not in entry:
            raise ConfigError(f"{path}: each [[exceptions]] needs file + include")
        if not str(entry.get("reason", "")).strip():
            raise ConfigError(
                f"{path}: exception {entry['file']} -> {entry['include']} "
                "needs a non-empty reason"
            )
        exceptions.add((entry["file"], entry["include"]))

    return LayersConfig(layers=layers, exceptions=frozenset(exceptions))


def _check_dag(path: str, layers: dict) -> None:
    """Rejects cycles in the declared deps ("*" edges are exempt: a layer
    that sees everything is a sink for the cycle check, not a source)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in layers}

    def visit(name, stack):
        color[name] = GRAY
        stack.append(name)
        for dep in sorted(layers[name].deps):
            if dep == "*":
                continue
            if color[dep] == GRAY:
                cycle = stack[stack.index(dep):] + [dep]
                raise ConfigError(
                    f"{path}: declared layer graph has a cycle: "
                    + " -> ".join(cycle)
                )
            if color[dep] == WHITE:
                visit(dep, stack)
        stack.pop()
        color[name] = BLACK

    for name in sorted(layers):
        if color[name] == WHITE:
            visit(name, [])
