"""Source-tree model shared by the tools/analyze passes.

Stdlib only. The model is textual: files are read once, comments and
string literals are blanked (preserving line structure so findings carry
real line numbers), and passes work on the stripped text. That is the
same trade tools/lint.py makes — fast, dependency-free, and precise
enough because the repo's style is regular (clang-format enforced).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

SOURCE_SUFFIXES = (".h", ".cc", ".cpp")

# Directories whose sources participate in include scans. src/ is the
# library (layer-checked); the rest are "apps" that may include any
# public header and count as users for the unused-header check.
SRC_ROOT = "src"
APP_ROOTS = ("tests", "tools", "bench", "examples", "apps")

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
_NOLINT_RE = re.compile(r"NOLINT\(([^)]*)\)")
_NOLINTNEXTLINE_RE = re.compile(r"NOLINTNEXTLINE\(([^)]*)\)")


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blanks comments and (unless keep_strings) string/char literals,
    keeping newlines.

    Keeps NOLINT markers visible by replacing comment bodies with spaces
    except for NOLINT(...) / NOLINTNEXTLINE(...) tokens, which passes
    need to honour as escapes. keep_strings=True still scans strings (so
    comment markers inside literals don't confuse the stripper) but
    leaves their text intact — include extraction needs the quoted path.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(_preserve_nolint(text[i:j]))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(_blank_keep_newlines(text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            if keep_strings:
                out.append(text[i:j])
            else:
                out.append(
                    quote
                    + " " * max(0, j - i - 2)
                    + (quote if j - i >= 2 else "")
                )
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _blank_keep_newlines(chunk: str) -> str:
    return "".join(ch if ch == "\n" else " " for ch in chunk)


def _preserve_nolint(comment: str) -> str:
    marker = _NOLINT_RE.search(comment) or _NOLINTNEXTLINE_RE.search(comment)
    if marker is None:
        return " " * len(comment)
    blanked = list(" " * len(comment))
    blanked[marker.start() : marker.end()] = comment[marker.start() : marker.end()]
    return "".join(blanked)


@dataclass
class SourceFile:
    """One file: raw text, stripped text, and its repo-relative includes."""

    path: str  # repo-relative, '/'-separated
    text: str
    stripped: str
    includes: list = field(default_factory=list)  # [(line, "src/...h")]

    def nolint_lines(self, rule: str) -> set:
        """Line numbers (1-based) where `rule` is NOLINT-escaped."""
        lines = set()
        for lineno, line in enumerate(self.stripped.splitlines(), start=1):
            m = _NOLINT_RE.search(line)
            if m and _rule_matches(m.group(1), rule):
                lines.add(lineno)
            m = _NOLINTNEXTLINE_RE.search(line)
            if m and _rule_matches(m.group(1), rule):
                lines.add(lineno + 1)
        return lines


def _rule_matches(spec: str, rule: str) -> bool:
    """True when the NOLINT tag list covers `rule`. Tags may carry the
    conventional `swope-` prefix (clang-tidy style): both
    NOLINT(lock-discipline) and NOLINT(swope-lock-discipline) match."""
    names = [s.strip() for s in spec.split(",")]
    return rule in names or "swope-" + rule in names or "*" in names


def load_file(root: str, relpath: str) -> SourceFile:
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        text = f.read()
    stripped = strip_comments_and_strings(text)
    includes = []
    include_src = strip_comments_and_strings(text, keep_strings=True)
    for lineno, line in enumerate(include_src.splitlines(), start=1):
        m = _INCLUDE_RE.match(line)
        if m:
            includes.append((lineno, m.group(1)))
    return SourceFile(path=relpath, text=text, stripped=stripped, includes=includes)


def walk_sources(root: str, subdirs) -> list:
    """All source files under root/{subdirs}, as repo-relative paths."""
    paths = []
    for sub in subdirs:
        top = os.path.join(root, sub)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_SUFFIXES):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    paths.append(rel.replace(os.sep, "/"))
    return paths


def load_tree(root: str, subdirs=(SRC_ROOT,) + APP_ROOTS) -> dict:
    """path -> SourceFile for every source file under the given subdirs."""
    return {p: load_file(root, p) for p in walk_sources(root, subdirs)}


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
