"""Pass `locks`: the repo's lock-discipline contract (src/common/mutex.h).

Two rules over every class/struct defined under src/:

  raw-sync-member   members of type std::mutex / std::shared_mutex /
                    std::condition_variable (etc.) are banned outside
                    src/common/mutex.h. Raw standard types carry no
                    capability attributes under libstdc++, so clang's
                    -Wthread-safety cannot see through them; swope::Mutex
                    and swope::CondVar are the annotated equivalents.

  lock-discipline   in any class that owns a Mutex, every mutable data
                    member must be GUARDED_BY-annotated. Exempt: static
                    and const-qualified members (including `T* const`
                    handles), std::atomic members, the Mutex/CondVar
                    members themselves, and members whose type is itself
                    a mutex-owning (self-synchronized) class — directly
                    or via unique_ptr/shared_ptr. Escape hatch:
                    NOLINT(swope-lock-discipline) with a reason, for
                    state that is provably confined to one thread (e.g.
                    ctor/dtor-only).

The parser is textual (brace tracking over comment-stripped source), the
same level of rigor as tools/lint.py: it understands the repo's
clang-format-enforced style, not arbitrary C++. clang's -Wthread-safety
(promoted to -Werror in CI) is the ground-truth checker that the
GUARDED_BY annotations this pass demands are actually honoured.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from srcmodel import Finding

RULE = "lock-discipline"
RAW_RULE = "raw-sync-member"

# The one place allowed to spell the raw standard types.
MUTEX_WRAPPER_HEADER = "src/common/mutex.h"

_RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|\bstd\s*::\s*condition_variable(?:_any)?\b"
)
_MUTEX_MEMBER_RE = re.compile(r"(?<!\w)(?:swope\s*::\s*)?Mutex(?!\w)")
_CONDVAR_MEMBER_RE = re.compile(r"(?<!\w)(?:swope\s*::\s*)?CondVar(?!\w)")
_GUARDED_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\s*\(")
_ACCESS_LABEL_RE = re.compile(r"(?<!:)\b(?:public|private|protected)\s*:(?!:)")
_CLASS_RE = re.compile(r"\b(class|struct)\b")
_NAME_RE = re.compile(r"[A-Za-z_]\w*")

_SKIP_DECL_KEYWORDS = (
    "using",
    "typedef",
    "friend",
    "enum",
    "class",
    "struct",
    "template",
    "static_assert",
    "explicit",
    "operator",
)


@dataclass
class ClassDef:
    name: str
    path: str
    line: int
    members: list = field(default_factory=list)  # [MemberDecl]

    @property
    def owns_mutex(self) -> bool:
        return any(m.is_mutex for m in self.members)


@dataclass
class MemberDecl:
    text: str  # whitespace-collapsed declaration, no trailing ';'
    name: str
    line: int
    is_mutex: bool = False
    is_raw_sync: bool = False
    guarded: bool = False


def run(tree: dict, config=None) -> list:
    del config  # layer config is not needed; signature matches the other passes
    classes = []
    for path in sorted(tree):
        if not path.startswith("src/"):
            continue
        classes.extend(parse_classes(tree[path]))

    self_sync = self_synchronized_types(classes)
    findings = []
    for cls in classes:
        findings.extend(_check_class(cls, self_sync, tree[cls.path]))
    return findings


def self_synchronized_types(classes) -> frozenset:
    """Class names that own a Mutex — their instances synchronize
    themselves, so embedding one in another locked class needs no
    GUARDED_BY. Computed from the same scan, so the set tracks the code."""
    return frozenset(c.name for c in classes if c.owns_mutex)


def _check_class(cls: ClassDef, self_sync, sf) -> list:
    findings = []
    raw_escapes = sf.nolint_lines(RAW_RULE)
    for m in cls.members:
        if m.is_raw_sync and cls.path != MUTEX_WRAPPER_HEADER:
            if m.line not in raw_escapes:
                findings.append(
                    Finding(
                        cls.path,
                        m.line,
                        RAW_RULE,
                        f"member '{m.name}' of class {cls.name} uses a raw "
                        "standard sync primitive; use swope::Mutex / "
                        "swope::CondVar (src/common/mutex.h) so clang's "
                        "thread-safety analysis can see the capability",
                    )
                )
    if not cls.owns_mutex:
        return findings

    escapes = sf.nolint_lines(RULE)
    for m in cls.members:
        if m.guarded or m.line in escapes:
            continue
        if _is_exempt(m, self_sync):
            continue
        findings.append(
            Finding(
                cls.path,
                m.line,
                RULE,
                f"class {cls.name} owns a Mutex but member '{m.name}' is "
                "not GUARDED_BY-annotated; annotate it, make it "
                "const/atomic, or NOLINT(swope-lock-discipline) with a "
                "reason if it is confined to one thread",
            )
        )
    return findings


def _is_exempt(m: MemberDecl, self_sync) -> bool:
    tokens = set(_NAME_RE.findall(m.text))
    if "static" in tokens or "const" in tokens or "constexpr" in tokens:
        return True
    if m.is_mutex or _CONDVAR_MEMBER_RE.search(m.text):
        return True
    if re.search(r"\bstd\s*::\s*atomic\b|\batomic_flag\b", m.text):
        return True
    type_names = set(_NAME_RE.findall(m.text[: m.text.rfind(m.name)]))
    return bool(type_names & self_sync)


def parse_classes(sf) -> list:
    """All class/struct definitions in `sf`, with their data members.

    Textual parser: tracks braces on the comment-stripped source, skips
    forward declarations and `template <class T>` parameters, recurses
    into nested classes (whose bodies are excluded from the outer
    class's member list).
    """
    text = sf.stripped
    classes = []
    _scan_region(sf, text, 0, len(text), classes)
    return classes


def _scan_region(sf, text, begin, end, out) -> None:
    i = begin
    while i < end:
        m = _CLASS_RE.search(text, i, end)
        if m is None:
            return
        # `template <class T>` / `<class ...>`: preceded by '<' or ','.
        j = m.start() - 1
        while j >= 0 and text[j] in " \t\n":
            j -= 1
        if j >= 0 and text[j] in "<,":
            i = m.end()
            continue
        # `enum class`: preceded by 'enum'.
        if text[max(0, m.start() - 8): m.start()].strip().endswith("enum"):
            i = m.end()
            continue
        header_end, body_start = _find_body(text, m.end(), end)
        if body_start is None:
            i = header_end
            continue
        name = _class_name(text[m.end(): body_start])
        body_end = _match_brace(text, body_start, end)
        if name is not None:
            cls = ClassDef(
                name=name,
                path=sf.path,
                line=text.count("\n", 0, m.start()) + 1,
            )
            cls.members = _parse_members(text, body_start + 1, body_end)
            out.append(cls)
        _scan_region(sf, text, body_start + 1, body_end, out)
        i = body_end + 1


def _find_body(text, i, end):
    """From just past 'class'/'struct', finds the opening '{' of the
    definition, or stops at ';' (forward declaration) / '(' (e.g. a
    function-local use). Returns (resume_index, body_start|None)."""
    depth = 0  # angle/paren depth inside the base-clause (templates)
    while i < end:
        c = text[i]
        if c == "{" and depth == 0:
            return i, i
        if c == ";" and depth == 0:
            return i + 1, None
        if c in "<(":
            depth += 1
        elif c in ">)":
            depth = max(0, depth - 1)
        elif c == "=" and depth == 0:
            # `class X = Y` in template args slipped through; bail out.
            return i + 1, None
        i += 1
    return end, None


def _class_name(header: str):
    # Strip attributes ([[nodiscard]]), annotation macros
    # (CAPABILITY("mutex"), SCOPED_CAPABILITY — all-caps by convention),
    # and 'final'; take the first identifier, drop anything after ':'
    # (base clause).
    header = re.sub(r"\[\[[^\]]*\]\]", " ", header)
    header = re.sub(r"\b[A-Z][A-Z0-9_]+\s*\([^)]*\)", " ", header)
    header = header.split(":")[0]
    names = [
        t
        for t in _NAME_RE.findall(header)
        if t not in ("final", "alignas") and not re.fullmatch(r"[A-Z][A-Z0-9_]+", t)
    ]
    return names[0] if names else None


def _match_brace(text, open_idx, end):
    depth = 0
    for i in range(open_idx, end):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return end - 1


def _parse_members(text, begin, end) -> list:
    """Data-member declarations at class-body depth.

    Segments the body at top-level ';', skipping over brace blocks
    (function bodies, nested classes, brace initializers). A brace block
    immediately followed by ';' belongs to the preceding declaration
    (brace-init or nested type); one followed by anything else ends a
    function definition, whose segment is dropped.
    """
    body = text[begin:end]
    body = _ACCESS_LABEL_RE.sub(" ", body)
    members = []
    seg_start = 0
    i = 0
    n = len(body)
    depth = 0  # parens/angles within a declaration (GUARDED_BY, templates)
    while i < n:
        c = body[i]
        if c == "{":
            close = _match_brace(body, i, n)
            k = close + 1
            while k < n and body[k] in " \t\n":
                k += 1
            if k < n and body[k] == ";":
                decl = body[seg_start:i]
                _append_member(members, decl, text, begin + seg_start)
                i = k + 1
                seg_start = i
            else:
                i = close + 1
                seg_start = i
            depth = 0
            continue
        if c in "(<":
            depth += 1
        elif c in ")>":
            depth = max(0, depth - 1)
        elif c == ";" and depth == 0:
            decl = body[seg_start:i]
            _append_member(members, decl, text, begin + seg_start)
            seg_start = i + 1
        i += 1
    return members


def _append_member(members, decl, text, abs_start) -> None:
    collapsed = " ".join(decl.split())
    if not collapsed:
        return
    first = _NAME_RE.match(collapsed)
    if first is not None and first.group(0) in _SKIP_DECL_KEYWORDS:
        return
    name = _member_name(collapsed)
    if name is None:
        return
    # Line of the declaration's last line (where the name sits).
    line = text.count("\n", 0, abs_start + len(decl)) + 1
    members.append(
        MemberDecl(
            text=collapsed,
            name=name,
            line=line,
            is_mutex=bool(_MUTEX_MEMBER_RE.search(collapsed))
            and "MutexLock" not in collapsed,
            is_raw_sync=bool(_RAW_SYNC_RE.search(collapsed)),
            guarded=bool(_GUARDED_RE.search(collapsed)),
        )
    )


def _member_name(decl: str):
    """The declared member name, or None for things that are not data
    members (function declarations, deleted/defaulted functions, ...)."""
    # Drop a trailing initializer.
    if re.search(r"\boperator\b", decl):
        return None
    core = re.split(r"\s*=\s*", decl, maxsplit=1)[0].strip()
    if not core or core.endswith(")"):
        # `= default` / `= delete` / `= 0` leave a ')'-terminated core:
        # a function. Plain ')' endings are function declarations too
        # (GUARDED_BY never terminates a data member: the attribute
        # precedes the initializer or the ';').
        return None
    # Strip trailing attributes: GUARDED_BY(...), REQUIRES(...), etc.
    attr = re.search(
        r"\b(?:PT_)?(?:GUARDED_BY|ACQUIRED_(?:AFTER|BEFORE)|REQUIRES|"
        r"EXCLUDES|RETURN_CAPABILITY)\s*\(",
        core,
    )
    if attr is not None:
        core = core[: attr.start()].strip()
    # Array members: drop the extent.
    core = re.sub(r"\[[^\]]*\]\s*$", "", core).strip()
    if core.endswith(")"):
        return None
    names = _NAME_RE.findall(core)
    if not names:
        return None
    name = names[-1]
    if name in ("override", "final", "noexcept", "delete", "default", "0"):
        return None
    # A lone identifier is a label or stray token, not `Type name`.
    if len(names) < 2 and not re.search(r"[*&>]\s*" + re.escape(name) + r"$", core):
        return None
    return name
