"""swope-analyze: compile-commands-driven architecture checks.

Usage:
  python3 tools/analyze [includes] [locks] [headers] [options]

Passes (default: includes + locks; `all` selects all three):
  includes   layer DAG conformance, header include cycles, and unused
             public headers, against tools/analyze/layers.toml
  locks      lock discipline: no raw std sync primitives outside
             src/common/mutex.h; every mutable member of a Mutex-owning
             class GUARDED_BY-annotated (clang -Wthread-safety is the
             runtime-truth half of this contract)
  headers    header self-containment; generates stub TUs, and with
             --compile syntax-checks them via compile_commands.json

Exit codes: 0 clean, 1 findings, 2 usage/config error.

Findings print as `path:line: [rule] message` — same shape as
tools/lint.py, so editors and CI annotate them identically.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import layers_config  # noqa: E402
import pass_headers  # noqa: E402
import pass_includes  # noqa: E402
import pass_locks  # noqa: E402
import srcmodel  # noqa: E402

PASSES = ("includes", "locks", "headers")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "passes", nargs="*", choices=PASSES + ("all",),
        help="passes to run (default: includes locks)")
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: parent of tools/)")
    parser.add_argument(
        "--layers", default=None,
        help="layer config (default: tools/analyze/layers.toml)")
    parser.add_argument(
        "--out-dir", default=None,
        help="stub directory for the headers pass "
             "(default: <root>/build/check_headers)")
    parser.add_argument(
        "--compile-commands", default=None,
        help="compile_commands.json for headers --compile "
             "(default: <root>/build/compile_commands.json)")
    parser.add_argument(
        "--compile", action="store_true",
        help="headers pass: syntax-check each stub with the real compiler")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print findings only, no per-pass progress")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    selected = list(dict.fromkeys(args.passes)) or ["includes", "locks"]
    if "all" in selected:
        selected = list(PASSES)

    def log(msg):
        if not args.quiet:
            print(msg)

    try:
        config = layers_config.load(
            args.layers or os.path.join(root, "tools", "analyze", "layers.toml"))
    except layers_config.ConfigError as e:
        print(f"tools/analyze: {e}", file=sys.stderr)
        return 2

    tree = srcmodel.load_tree(root)
    findings = []
    for name in selected:
        log(f"pass {name} ...")
        if name == "includes":
            findings.extend(pass_includes.run(tree, config))
        elif name == "locks":
            findings.extend(pass_locks.run(tree, config))
        elif name == "headers":
            out_dir = args.out_dir or os.path.join(root, "build", "check_headers")
            if args.compile:
                cc = args.compile_commands or os.path.join(
                    root, "build", "compile_commands.json")
                if not os.path.isfile(cc):
                    print(f"tools/analyze: {cc} not found; configure the "
                          "build first or pass --compile-commands",
                          file=sys.stderr)
                    return 2
                try:
                    findings.extend(pass_headers.run_compile(
                        tree, out_dir, cc, root, log=log))
                except RuntimeError as e:
                    print(f"tools/analyze: {e}", file=sys.stderr)
                    return 2
            else:
                stubs = pass_headers.generate_stubs(tree, out_dir)
                log(f"  generated {len(stubs)} stubs in {out_dir}")

    for finding in findings:
        print(finding)
    log(f"tools/analyze: {len(findings)} finding(s) "
        f"across {len(selected)} pass(es)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
