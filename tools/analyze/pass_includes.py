"""Pass `includes`: the architecture checks over the include graph.

Three checks, all driven by the declared DAG in layers.toml plus the
real `#include "src/..."` edges of the tree:

  layer-dep      a file includes a header from a layer its own layer
                 does not declare a dependency on (and the edge is not a
                 documented [[exceptions]] entry);
  include-cycle  the file-level include graph under src/ has a cycle
                 (headers that transitively include themselves);
  unused-header  a public src/ header that no file in the repo includes
                 other than itself and its own .cc — dead API surface.

Files outside src/ (tests, tools, bench, examples) are "apps": they are
not layer-checked, but they do count as users for unused-header (a
header only tests exercise is still live API).
"""

from __future__ import annotations

from srcmodel import Finding

# Headers internal to their layer: excluded from unused-header (their
# audience is the layer itself, enforced separately by the
# SWOPE_CORE_INTERNAL preprocessor gate and tools/lint.py).
INTERNAL_HEADERS = frozenset(
    {
        "src/core/adaptive_sampling_driver.h",
        "src/core/scorers.h",
    }
)


def run(tree: dict, config) -> list:
    findings = []
    findings.extend(_check_layer_deps(tree, config))
    findings.extend(_check_cycles(tree))
    findings.extend(_check_unused_headers(tree))
    return findings


def _check_layer_deps(tree: dict, config) -> list:
    findings = []
    for path in sorted(tree):
        if not path.startswith("src/"):
            continue
        layer = config.layer_of(path)
        if layer is None:
            findings.append(
                Finding(
                    path,
                    1,
                    "layer-dep",
                    "file is under src/ but no layer in layers.toml claims "
                    "it; add a [layers.*] entry",
                )
            )
            continue
        if "*" in layer.deps:
            continue
        for lineno, inc in tree[path].includes:
            if not inc.startswith("src/"):
                continue
            target = config.layer_of(inc)
            if target is None or target.name == layer.name:
                continue
            if target.name in layer.deps:
                continue
            if (path, inc) in config.exceptions:
                continue
            findings.append(
                Finding(
                    path,
                    lineno,
                    "layer-dep",
                    f"layer '{layer.name}' does not depend on "
                    f"'{target.name}' (include of {inc}); extend deps in "
                    "layers.toml or add a documented exception",
                )
            )
    return findings


def _check_cycles(tree: dict) -> list:
    """File-level cycle detection over src/ includes.

    Includes from .cc files cannot close a cycle (nothing includes a
    .cc), so the graph is restricted to headers.
    """
    graph = {}
    for path, sf in tree.items():
        if not path.startswith("src/") or not path.endswith(".h"):
            continue
        graph[path] = sorted(
            inc
            for _, inc in sf.includes
            if inc.startswith("src/") and inc.endswith(".h") and inc in tree
        )

    findings = []
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {p: WHITE for p in graph}
    reported = set()

    def visit(node, stack):
        color[node] = GRAY
        stack.append(node)
        for nxt in graph.get(node, ()):
            if nxt not in color:
                continue
            if color[nxt] == GRAY:
                cycle = tuple(stack[stack.index(nxt):] + [nxt])
                if frozenset(cycle) not in reported:
                    reported.add(frozenset(cycle))
                    findings.append(
                        Finding(
                            nxt,
                            1,
                            "include-cycle",
                            "header include cycle: " + " -> ".join(cycle),
                        )
                    )
            elif color[nxt] == WHITE:
                visit(nxt, stack)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            visit(node, [])
    return findings


def _check_unused_headers(tree: dict) -> list:
    used = set()
    for sf in tree.values():
        for _, inc in sf.includes:
            used.add(inc)
    findings = []
    for path in sorted(tree):
        if not path.startswith("src/") or not path.endswith(".h"):
            continue
        if path in INTERNAL_HEADERS:
            continue
        includers = {
            p
            for p, sf in tree.items()
            if p != path
            and p != path[:-2] + ".cc"
            and any(inc == path for _, inc in sf.includes)
        }
        if not includers:
            findings.append(
                Finding(
                    path,
                    1,
                    "unused-header",
                    "public header is included by nothing outside its own "
                    "TU; delete it or fold it into its only user",
                )
            )
    return findings
