"""Tests for tools/analyze: every rule demonstrated firing on a seeded
violation and staying quiet on the compliant twin.

Run directly (`python3 tools/analyze/analyze_test.py`) or via ctest
(`ctest -R analyze_test`).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import layers_config
import pass_headers
import pass_includes
import pass_locks
import srcmodel

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

MINIMAL_LAYERS = textwrap.dedent(
    """\
    [layers.common]
    path = "src/common"
    deps = []

    [layers.core]
    path = "src/core"
    deps = ["common"]

    [layers.engine]
    path = "src/engine"
    deps = ["common", "core"]
    """
)


class TempTree:
    """A throwaway repo root built from {relpath: content}."""

    def __init__(self, files, layers_toml=MINIMAL_LAYERS):
        self.dir = tempfile.mkdtemp(prefix="swope_analyze_test_")
        for rel, content in files.items():
            path = os.path.join(self.dir, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(textwrap.dedent(content))
        self.layers_path = os.path.join(self.dir, "layers.toml")
        with open(self.layers_path, "w", encoding="utf-8") as f:
            f.write(layers_toml)

    def cleanup(self):
        shutil.rmtree(self.dir, ignore_errors=True)

    def load(self):
        return srcmodel.load_tree(self.dir)

    def config(self):
        return layers_config.load(self.layers_path)


def rules(findings):
    return sorted({f.rule for f in findings})


class SrcModelTest(unittest.TestCase):
    def test_strip_blanks_comments_and_strings(self):
        text = 'int a; // trailing\nconst char* s = "// not a comment";\n'
        stripped = srcmodel.strip_comments_and_strings(text)
        self.assertIn("int a;", stripped)
        self.assertNotIn("trailing", stripped)
        self.assertNotIn("not a comment", stripped)
        self.assertEqual(text.count("\n"), stripped.count("\n"))

    def test_strip_keep_strings_preserves_include_paths(self):
        text = '#include "src/common/status.h"  // why\n'
        kept = srcmodel.strip_comments_and_strings(text, keep_strings=True)
        self.assertIn('"src/common/status.h"', kept)
        self.assertNotIn("why", kept)

    def test_block_comment_spanning_lines_keeps_line_numbers(self):
        text = "a /* one\n two */ b\n"
        stripped = srcmodel.strip_comments_and_strings(text)
        self.assertEqual(2, stripped.count("\n"))
        self.assertIn("b", stripped.splitlines()[1])

    def test_nolint_lines_inline_and_nextline(self):
        tree = TempTree(
            {
                "src/common/x.h": """\
                int a;  // NOLINT(swope-lock-discipline)
                // NOLINTNEXTLINE(lock-discipline): reason
                int b;
                int c;  // NOLINT(other-rule)
                """
            }
        )
        self.addCleanup(tree.cleanup)
        sf = tree.load()["src/common/x.h"]
        self.assertEqual({1, 3}, sf.nolint_lines("lock-discipline"))

    def test_includes_extracted_with_line_numbers(self):
        tree = TempTree(
            {
                "src/common/x.h": """\
                #include <vector>
                #include "src/common/y.h"
                """,
                "src/common/y.h": "\n",
            }
        )
        self.addCleanup(tree.cleanup)
        sf = tree.load()["src/common/x.h"]
        self.assertEqual([(2, "src/common/y.h")], sf.includes)


class LayersConfigTest(unittest.TestCase):
    def test_loads_the_real_config(self):
        config = layers_config.load(
            os.path.join(REPO_ROOT, "tools", "analyze", "layers.toml"))
        self.assertIn("core", config.layers)
        self.assertIn(
            ("src/common/thread_pool.cc", "src/obs/metrics.h"),
            config.exceptions)

    def test_longest_prefix_layer_resolution(self):
        tree = TempTree({})
        self.addCleanup(tree.cleanup)
        config = tree.config()
        self.assertEqual("common",
                         config.layer_of("src/common/status.h").name)
        self.assertIsNone(config.layer_of("tests/foo.cc"))

    def test_declared_cycle_is_a_config_error(self):
        cyclic = MINIMAL_LAYERS.replace('deps = []', 'deps = ["engine"]')
        tree = TempTree({}, layers_toml=cyclic)
        self.addCleanup(tree.cleanup)
        with self.assertRaisesRegex(layers_config.ConfigError, "cycle"):
            tree.config()

    def test_unknown_dep_is_a_config_error(self):
        bad = MINIMAL_LAYERS.replace('deps = ["common"]', 'deps = ["nope"]')
        tree = TempTree({}, layers_toml=bad)
        self.addCleanup(tree.cleanup)
        with self.assertRaisesRegex(layers_config.ConfigError, "unknown"):
            tree.config()

    def test_exception_requires_reason(self):
        toml = MINIMAL_LAYERS + textwrap.dedent(
            """
            [[exceptions]]
            file = "src/common/a.cc"
            include = "src/core/b.h"
            """
        )
        tree = TempTree({}, layers_toml=toml)
        self.addCleanup(tree.cleanup)
        with self.assertRaisesRegex(layers_config.ConfigError, "reason"):
            tree.config()


class IncludePassTest(unittest.TestCase):
    def make(self, files, layers_toml=MINIMAL_LAYERS):
        tree = TempTree(files, layers_toml)
        self.addCleanup(tree.cleanup)
        return tree.load(), tree.config()

    def test_undeclared_edge_fires_and_declared_edge_does_not(self):
        tree, config = self.make(
            {
                # common -> core is not declared: violation.
                "src/common/bad.cc": '#include "src/core/algo.h"\n',
                # core -> common is declared: fine.
                "src/core/algo.h": '#include "src/common/util.h"\n',
                "src/core/algo.cc": '#include "src/core/algo.h"\n',
                "src/common/util.h": "\n",
                "src/common/util.cc": '#include "src/common/util.h"\n',
                "tests/algo_test.cc": '#include "src/core/algo.h"\n'
                                      '#include "src/common/util.h"\n'
                                      '#include "src/common/bad_helper.h"\n',
                "src/common/bad_helper.h": "\n",
            }
        )
        findings = pass_includes.run(tree, config)
        layer = [f for f in findings if f.rule == "layer-dep"]
        self.assertEqual(1, len(layer))
        self.assertEqual("src/common/bad.cc", layer[0].path)
        self.assertEqual(1, layer[0].line)
        self.assertIn("'common' does not depend on 'core'", layer[0].message)

    def test_documented_exception_suppresses_the_edge(self):
        toml = MINIMAL_LAYERS + textwrap.dedent(
            """
            [[exceptions]]
            file = "src/common/bad.cc"
            include = "src/core/algo.h"
            reason = "transitional"
            """
        )
        tree, config = self.make(
            {
                "src/common/bad.cc": '#include "src/core/algo.h"\n',
                "src/core/algo.h": "\n",
                "src/core/algo.cc": '#include "src/core/algo.h"\n',
                "tests/t.cc": '#include "src/core/algo.h"\n',
            },
            layers_toml=toml,
        )
        findings = pass_includes.run(tree, config)
        self.assertEqual([], [f for f in findings if f.rule == "layer-dep"])

    def test_header_cycle_detected(self):
        tree, config = self.make(
            {
                "src/common/a.h": '#include "src/common/b.h"\n',
                "src/common/b.h": '#include "src/common/a.h"\n',
                "tests/t.cc": '#include "src/common/a.h"\n'
                              '#include "src/common/b.h"\n',
            }
        )
        findings = pass_includes.run(tree, config)
        cycles = [f for f in findings if f.rule == "include-cycle"]
        self.assertEqual(1, len(cycles))
        self.assertIn("src/common/a.h", cycles[0].message)
        self.assertIn("src/common/b.h", cycles[0].message)

    def test_unused_public_header_flagged_only_when_truly_unused(self):
        tree, config = self.make(
            {
                "src/common/dead.h": "\n",
                "src/common/dead.cc": '#include "src/common/dead.h"\n',
                "src/common/live.h": "\n",
                "tests/t.cc": '#include "src/common/live.h"\n',
            }
        )
        findings = pass_includes.run(tree, config)
        unused = [f for f in findings if f.rule == "unused-header"]
        self.assertEqual(["src/common/dead.h"], [f.path for f in unused])

    def test_unlayered_src_file_flagged(self):
        toml = MINIMAL_LAYERS  # no umbrella layer for src/ root
        tree, config = self.make(
            {"src/orphan/x.h": "\n", "tests/t.cc": '#include "src/orphan/x.h"\n'},
            layers_toml=toml,
        )
        findings = pass_includes.run(tree, config)
        self.assertIn("layer-dep", rules(findings))
        self.assertIn("no layer", findings[0].message)


LOCKED_CLASS = """\
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace swope {{
class Widget {{
 public:
  void Poke();

 private:
  Mutex mutex_;
  {member}
}};
}}  // namespace swope
"""


class LockPassTest(unittest.TestCase):
    def check_member(self, member):
        tree = TempTree(
            {"src/common/widget.h": LOCKED_CLASS.format(member=member)})
        self.addCleanup(tree.cleanup)
        return pass_locks.run(tree.load())

    def test_unguarded_member_fires(self):
        findings = self.check_member("int count_ = 0;")
        self.assertEqual(["lock-discipline"], rules(findings))
        self.assertIn("'count_'", findings[0].message)
        self.assertIn("Widget", findings[0].message)

    def test_guarded_member_is_clean(self):
        self.assertEqual([], self.check_member(
            "int count_ GUARDED_BY(mutex_) = 0;"))

    def test_guarded_container_with_parens_in_type_is_clean(self):
        self.assertEqual([], self.check_member(
            "std::deque<std::function<void()>> tasks_ GUARDED_BY(mutex_);"))

    def test_const_static_atomic_members_exempt(self):
        self.assertEqual([], self.check_member("const int limit_ = 3;"))
        self.assertEqual([], self.check_member("Gauge* const gauge_;"))
        self.assertEqual([], self.check_member("static int counter_;"))
        self.assertEqual([], self.check_member("std::atomic<int> hits_{0};"))

    def test_self_synchronized_member_exempt(self):
        tree = TempTree(
            {
                "src/common/widget.h": LOCKED_CLASS.format(
                    member="Inner inner_; std::unique_ptr<Inner> extra_;"),
                "src/common/inner.h": LOCKED_CLASS.format(
                    member="int x_ GUARDED_BY(mutex_) = 0;").replace(
                        "Widget", "Inner"),
            }
        )
        self.addCleanup(tree.cleanup)
        self.assertEqual([], pass_locks.run(tree.load()))

    def test_nolint_escapes_suppress(self):
        self.assertEqual([], self.check_member(
            "int scratch_;  // NOLINT(swope-lock-discipline): ctor-only"))
        self.assertEqual([], self.check_member(
            "// NOLINTNEXTLINE(swope-lock-discipline): ctor-only\n"
            "  int scratch_;"))

    def test_raw_std_mutex_member_fires_anywhere_but_the_wrapper(self):
        tree = TempTree(
            {
                "src/core/holder.h": """\
                namespace swope {
                class Holder {
                 private:
                  std::mutex raw_;
                };
                }  // namespace swope
                """
            }
        )
        self.addCleanup(tree.cleanup)
        findings = pass_locks.run(tree.load())
        self.assertEqual(["raw-sync-member"], rules(findings))

    def test_wrapper_header_may_hold_raw_mutex(self):
        repo_tree = srcmodel.load_tree(REPO_ROOT, subdirs=("src/common",))
        findings = pass_locks.run(
            {"src/common/mutex.h": repo_tree["src/common/mutex.h"]})
        self.assertEqual([], findings)

    def test_function_declarations_are_not_members(self):
        findings = self.check_member(
            "void Helper(int x) REQUIRES(!mutex_);\n"
            "  int guarded_ GUARDED_BY(mutex_) = 0;")
        self.assertEqual([], findings)

    def test_class_without_mutex_needs_no_annotations(self):
        tree = TempTree(
            {
                "src/common/plain.h": """\
                namespace swope {
                class Plain {
                 private:
                  int a_ = 0;
                  std::vector<int> b_;
                };
                }  // namespace swope
                """
            }
        )
        self.addCleanup(tree.cleanup)
        self.assertEqual([], pass_locks.run(tree.load()))

    def test_annotated_class_name_parsed_through_macros(self):
        tree = TempTree(
            {
                "src/common/w.h": """\
                class CAPABILITY("mutex") Wrapped {
                 private:
                  int x_ = 0;
                };
                """
            }
        )
        self.addCleanup(tree.cleanup)
        classes = pass_locks.parse_classes(tree.load()["src/common/w.h"])
        self.assertEqual(["Wrapped"], [c.name for c in classes])


class HeaderPassTest(unittest.TestCase):
    def test_stub_contents(self):
        text = pass_headers.stub_text("src/core/scorers.h")
        self.assertIn("#define SWOPE_CORE_INTERNAL", text)
        self.assertIn('#include "src/core/scorers.h"', text)
        public = pass_headers.stub_text("src/common/status.h")
        self.assertNotIn("SWOPE_CORE_INTERNAL", public)

    def test_generate_stubs_removes_stale_and_is_idempotent(self):
        tree = TempTree({"src/common/a.h": "\n", "tests/t.cc":
                         '#include "src/common/a.h"\n'})
        self.addCleanup(tree.cleanup)
        out = os.path.join(tree.dir, "stubs")
        loaded = tree.load()
        stubs = pass_headers.generate_stubs(loaded, out)
        self.assertEqual(1, len(stubs))
        stale = os.path.join(out, "src_gone.check.cc")
        with open(stale, "w", encoding="utf-8") as f:
            f.write("// stale\n")
        before = os.path.getmtime(stubs[0][1])
        pass_headers.generate_stubs(loaded, out)
        self.assertFalse(os.path.exists(stale))
        self.assertEqual(before, os.path.getmtime(stubs[0][1]))

    @unittest.skipUnless(shutil.which("c++") or shutil.which("g++"),
                         "no C++ compiler on PATH")
    def test_compile_catches_non_self_contained_header(self):
        compiler = shutil.which("c++") or shutil.which("g++")
        tree = TempTree(
            {
                # Uses std::vector without including <vector>.
                "src/common/broken.h": "inline int F(std::vector<int> v)"
                                       " { return (int)v.size(); }\n",
                "src/common/fine.h": "#include <vector>\n"
                                     "inline int G(std::vector<int> v)"
                                     " { return (int)v.size(); }\n",
                "tests/t.cc": '#include "src/common/broken.h"\n'
                              '#include "src/common/fine.h"\n',
                "src/common/ref.cc": "int main() { return 0; }\n",
            }
        )
        self.addCleanup(tree.cleanup)
        cc_json = os.path.join(tree.dir, "compile_commands.json")
        ref = os.path.join(tree.dir, "src/common/ref.cc")
        with open(cc_json, "w", encoding="utf-8") as f:
            f.write(
                '[{"directory": "%s", "file": "%s", '
                '"command": "%s -std=c++17 -c %s -o ref.o"}]'
                % (tree.dir, ref, compiler, ref)
            )
        findings = pass_headers.run_compile(
            tree.load(), os.path.join(tree.dir, "stubs"), cc_json, tree.dir)
        self.assertEqual(["src/common/broken.h"], [f.path for f in findings])
        self.assertEqual(["self-contained"], rules(findings))


class RealRepoTest(unittest.TestCase):
    """The analyzer must be green on the repo itself — the same
    invocation ctest runs."""

    def test_cli_includes_locks_green(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "tools", "analyze"),
             "includes", "locks", "-q"],
            capture_output=True, text=True, check=False)
        self.assertEqual(0, proc.returncode,
                         proc.stdout + proc.stderr)
        self.assertEqual("", proc.stdout.strip())

    def test_real_tree_lock_pass_sees_the_lock_owners(self):
        tree = srcmodel.load_tree(REPO_ROOT, subdirs=("src",))
        classes = []
        for sf in tree.values():
            classes.extend(pass_locks.parse_classes(sf))
        owners = pass_locks.self_synchronized_types(classes)
        for expected in ("ThreadPool", "MetricsRegistry", "DatasetRegistry",
                         "ResultCache", "PermutationCache", "QueryEngine",
                         "CodeScratchArena"):
            self.assertIn(expected, owners)


if __name__ == "__main__":
    unittest.main()
