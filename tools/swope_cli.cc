// swope_cli: command-line front end for the SWOPE library.
//
//   swope_cli gen      --preset=cdc --rows=100000 --out=data.swpb
//   swope_cli info     --in=data.swpb
//   swope_cli topk     --in=data.swpb --k=5 [--epsilon=0.1] [--exact]
//   swope_cli filter   --in=data.swpb --eta=2.0 [--epsilon=0.05] [--exact]
//   swope_cli mi-topk  --in=data.swpb --target=age --k=5 [--epsilon=0.5]
//   swope_cli mi-filter --in=data.swpb --target=age --eta=0.3
//
// Files ending in .csv are parsed as CSV; anything else is read/written
// as the SWPB binary column store. --max-support=U applies the paper's
// support-size pruning before querying (default 1000, 0 disables).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/baselines/exact.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/core/entropy.h"
#include "src/core/swope_filter_entropy.h"
#include "src/core/swope_filter_mi.h"
#include "src/core/swope_topk_entropy.h"
#include "src/core/swope_topk_mi.h"
#include "src/core/swope_topk_nmi.h"
#include "src/datagen/dataset_presets.h"
#include "src/engine/query_engine.h"
#include "src/engine/serve.h"
#include "src/obs/query_trace.h"
#include "src/table/append.h"
#include "src/table/binary_io.h"
#include "src/table/csv_reader.h"
#include "src/table/csv_writer.h"
#include "src/table/sketch_sidecar.h"

namespace swope {
namespace {

constexpr char kUsage[] =
    R"(usage: swope_cli <command> [flags]

commands:
  gen        generate a synthetic dataset    --preset=cdc|hus|pus|enem --rows=N --out=FILE [--seed=N]
  info       describe a dataset              --in=FILE
  convert    re-encode a dataset             --in=FILE --out=FILE
             CSV <-> SWPB in either direction; SWPB -> SWPB re-encodes
             legacy v1 files as bit-packed v2. Lossless: no column drop.
  append     append rows to a dataset        --in=FILE (--row=v1,v2,... | --rows=CSV) [--out=FILE]
             --rows is a headerless CSV of new rows (cells in column
             order); --out defaults to --in (in-place). Lossless: no
             column drop, sketch sidecars are updated incrementally.
  sketch     attach count-min sidecars       --in=FILE --out=FILE [--sketch-epsilon=E] [--sketch-threshold=U]
             builds a sidecar for every column with support > threshold
             (default epsilon 0.01, threshold 1000) and writes SWPB v3.
  topk       approximate entropy top-k       --in=FILE --k=N [--epsilon=E] [--seed=N] [--exact]
  filter     approximate entropy filtering   --in=FILE --eta=T [--epsilon=E] [--seed=N] [--exact]
  mi-topk    approximate MI top-k            --in=FILE --target=COL --k=N [--epsilon=E] [--exact]
  mi-filter  approximate MI filtering        --in=FILE --target=COL --eta=T [--epsilon=E] [--exact]
  nmi-topk   approximate normalized-MI top-k --in=FILE --target=COL --k=N [--epsilon=E]
  serve      query engine REPL: line requests on stdin, JSON on stdout
             [--threads=N] [--intra-threads=N] [--max-in-flight=N]
             [--max-in-flight-tasks=N] [--max-waiters=N] [--shard-size=N]
             [--pool-mode=stealing|single-queue] [--memory-budget-mb=N]
             [--result-cache=N] [--timeout-ms=N] [--slow-query-ms=T]
             [--event-log-capacity=N]
             --slow-query-ms captures any executed query slower than T ms
             into the event ring with its stage profile (0 disables);
             `events` reads the ring back

common flags:
  --max-support=U   drop columns with more than U distinct values before
                    querying (default 1000, or 0 -- keep everything --
                    when --sketch-epsilon is set)
  --sketch-epsilon=E    query commands: score candidates with support >
                    --sketch-threshold through a count-min sketch with
                    relative error E instead of exact counters (0, the
                    default, disables the sketch path; docs/SKETCH.md)
  --sketch-threshold=U  support above which the sketch path applies
                    (default 1000); without --sketch-epsilon, querying a
                    column with support > U is rejected
  --mmap            read --in (SWPB only) through the mmap loader: page-
                    aligned payloads are borrowed from the file mapping
                    (OS-paged) instead of copied to the heap; `info` then
                    reports the mapped-vs-resident byte split
  --threads=N       query commands: fan per-candidate counter updates out
                    across N worker threads (default 1 = serial; the answer
                    is byte-identical either way)
  --trace           SWOPE query commands: print the round-by-round
                    convergence table (round, M, lambda, max bias, active,
                    decided, cells, ms); all columns except ms are
                    deterministic for a given dataset/seed

FILE handling: *.csv is CSV with a header row; anything else is the SWPB
binary column store (written as bit-packed format v2; v1 files are still
read -- see docs/STORAGE.md).

exit codes: 0 success, 1 runtime failure (I/O, corruption, query error),
2 usage error (unknown command/flag, invalid argument). Diagnostics go to
stderr; stdout carries only results (JSON in serve mode).
)";

// Exit codes: usage errors (2) are the caller holding it wrong; runtime
// failures (1) are the environment (missing/corrupt files, ...). Keeping
// them distinct lets scripts retry the latter without re-reading --help.
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

int ExitCodeFor(const Status& status) {
  return status.IsInvalidArgument() || status.IsNotFound() ? kExitUsage
                                                           : kExitRuntime;
}

// All diagnostics go to stderr so stdout stays clean for results --
// serve-mode JSON in particular must never interleave with error text.
int Fail(const Status& status) {
  std::fprintf(stderr, "swope_cli: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

// Minimal --key=value flag map.
class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("unexpected argument '" + arg + "'");
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.values_[arg] = "true";
      } else {
        flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
    return flags;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr,
                                               10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
  bool GetBool(const std::string& key) const {
    return GetString(key) == "true";
  }

 private:
  std::map<std::string, std::string> values_;
};

bool IsCsvPath(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

Result<Table> LoadTable(const Flags& flags) {
  const std::string path = flags.GetString("in");
  if (path.empty()) return Status::InvalidArgument("--in=FILE is required");
  auto table = IsCsvPath(path)         ? ReadCsvFile(path)
               : flags.GetBool("mmap") ? ReadBinaryTableFileMapped(path)
                                       : ReadBinaryTableFile(path);
  if (!table.ok()) return table.status();
  // With the sketch path enabled, high-support columns are the point --
  // keep everything unless the user asked for pruning explicitly.
  const uint64_t default_max_support =
      flags.GetDouble("sketch-epsilon", 0.0) > 0.0 ? 0 : 1000;
  const uint64_t max_support =
      flags.GetUint("max-support", default_max_support);
  if (max_support > 0) {
    return table->DropHighSupportColumns(
        static_cast<uint32_t>(max_support));
  }
  return table;
}

QueryOptions OptionsFromFlags(const Flags& flags, double default_epsilon) {
  QueryOptions options;
  options.epsilon = flags.GetDouble("epsilon", default_epsilon);
  options.seed = flags.GetUint("seed", 42);
  options.sketch_epsilon = flags.GetDouble("sketch-epsilon", 0.0);
  options.sketch_threshold = static_cast<uint32_t>(
      flags.GetUint("sketch-threshold", options.sketch_threshold));
  return options;
}

// Owns the optional intra-query worker pool (--threads=N) and the
// optional round trace (--trace) for one CLI query; both must stay alive
// until the query returns.
struct QueryRuntime {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<QueryTrace> trace;
  QueryOptions options;

  /// Prints the convergence table when --trace was given.
  void PrintTrace() const {
    if (trace != nullptr) {
      std::fputs(FormatTraceTable(*trace).c_str(), stdout);
    }
  }
};

QueryRuntime RuntimeFromFlags(const Flags& flags, double default_epsilon) {
  QueryRuntime runtime;
  runtime.options = OptionsFromFlags(flags, default_epsilon);
  const uint64_t threads = flags.GetUint("threads", 1);
  if (threads > 1) {
    runtime.pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
    runtime.options.pool = runtime.pool.get();
  }
  if (flags.GetBool("trace")) {
    runtime.trace = std::make_unique<QueryTrace>();
    runtime.options.trace = runtime.trace.get();
  }
  return runtime;
}

Result<size_t> ResolveTarget(const Table& table, const Flags& flags) {
  const std::string target = flags.GetString("target");
  if (target.empty()) {
    return Status::InvalidArgument("--target=COLUMN is required");
  }
  auto by_name = table.ColumnIndex(target);
  if (by_name.ok()) return by_name;
  // Fall back to a numeric index.
  char* end = nullptr;
  const unsigned long long index = std::strtoull(target.c_str(), &end, 10);
  if (end != target.c_str() && *end == '\0' &&
      index < table.num_columns()) {
    return static_cast<size_t>(index);
  }
  return by_name.status();
}

void PrintItems(std::span<const AttributeScore> items,
                const QueryStats& stats, double elapsed_ms) {
  for (const auto& item : items) {
    std::printf("%-20s %.6f  [%.6f, %.6f]\n", item.name.c_str(),
                item.estimate, item.lower, item.upper);
  }
  std::printf("-- %zu attributes, %.1f ms, sampled %llu rows in %u "
              "iterations\n",
              items.size(), elapsed_ms,
              static_cast<unsigned long long>(stats.final_sample_size),
              stats.iterations);
}

int CmdGen(const Flags& flags) {
  auto preset = ParseDatasetPreset(flags.GetString("preset", "cdc"));
  if (!preset.ok()) return Fail(preset.status());
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("--out=FILE is required"));
  }
  auto table = MakePresetTable(*preset, flags.GetUint("rows", 0),
                               flags.GetUint("seed", 2021));
  if (!table.ok()) return Fail(table.status());
  const Status status = IsCsvPath(out) ? WriteCsvFile(*table, out)
                                       : WriteBinaryTableFile(*table, out);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %llu x %zu table to %s\n",
              static_cast<unsigned long long>(table->num_rows()),
              table->num_columns(), out.c_str());
  return 0;
}

// Lossless re-encode: unlike the query commands, convert never applies
// --max-support pruning -- the output holds exactly the input's columns.
int CmdConvert(const Flags& flags) {
  const std::string in = flags.GetString("in");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("--in=FILE is required"));
  }
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("--out=FILE is required"));
  }
  auto table = IsCsvPath(in) ? ReadCsvFile(in) : ReadBinaryTableFile(in);
  if (!table.ok()) return Fail(table.status());
  const Status status = IsCsvPath(out) ? WriteCsvFile(*table, out)
                                       : WriteBinaryTableFile(*table, out);
  if (!status.ok()) return Fail(status);
  std::printf("converted %s -> %s (%llu rows, %zu columns)\n", in.c_str(),
              out.c_str(),
              static_cast<unsigned long long>(table->num_rows()),
              table->num_columns());
  return 0;
}

// Splits one append row on commas (no quoting). Empty cells are kept.
std::vector<std::string> SplitRow(const std::string& text) {
  std::vector<std::string> cells;
  size_t begin = 0;
  while (true) {
    const size_t comma = text.find(',', begin);
    if (comma == std::string::npos) {
      cells.push_back(text.substr(begin));
      return cells;
    }
    cells.push_back(text.substr(begin, comma - begin));
    begin = comma + 1;
  }
}

// Gathers new rows from --row (one inline row) and/or --rows (headerless
// CSV file, one row per line; blank lines and #-comments are skipped).
Result<std::vector<std::vector<std::string>>> RowsFromFlags(
    const Flags& flags) {
  std::vector<std::vector<std::string>> rows;
  if (const std::string inline_row = flags.GetString("row");
      !inline_row.empty()) {
    rows.push_back(SplitRow(inline_row));
  }
  if (const std::string path = flags.GetString("rows"); !path.empty()) {
    std::ifstream file(path);
    if (!file) return Status::IOError("cannot open '" + path + "'");
    std::string line;
    while (std::getline(file, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] == '#') continue;
      rows.push_back(SplitRow(line));
    }
  }
  if (rows.empty()) {
    return Status::InvalidArgument(
        "--row=v1,v2,... or --rows=FILE is required");
  }
  return rows;
}

// Lossless like convert: append never applies --max-support pruning, and
// sketch sidecars absorb the new rows instead of being rebuilt.
int CmdAppend(const Flags& flags) {
  const std::string in = flags.GetString("in");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("--in=FILE is required"));
  }
  const std::string out = flags.GetString("out", in);
  auto rows = RowsFromFlags(flags);
  if (!rows.ok()) return Fail(rows.status());
  auto table = IsCsvPath(in) ? ReadCsvFile(in) : ReadBinaryTableFile(in);
  if (!table.ok()) return Fail(table.status());
  auto appended = AppendRowsToTable(*table, *rows);
  if (!appended.ok()) return Fail(appended.status());
  const Status status = IsCsvPath(out) ? WriteCsvFile(*appended, out)
                                       : WriteBinaryTableFile(*appended, out);
  if (!status.ok()) return Fail(status);
  std::printf("appended %zu rows: %s -> %s (%llu rows, %zu columns)\n",
              rows->size(), in.c_str(), out.c_str(),
              static_cast<unsigned long long>(appended->num_rows()),
              appended->num_columns());
  return 0;
}

// Attaches count-min sidecars to high-support columns and writes SWPB v3
// (CSV output would silently drop them, so it is rejected).
int CmdSketch(const Flags& flags) {
  const std::string in = flags.GetString("in");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("--in=FILE is required"));
  }
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("--out=FILE is required"));
  }
  if (IsCsvPath(out)) {
    return Fail(Status::InvalidArgument(
        "--out must be an SWPB file (CSV cannot carry sketch sidecars)"));
  }
  auto table = IsCsvPath(in) ? ReadCsvFile(in) : ReadBinaryTableFile(in);
  if (!table.ok()) return Fail(table.status());
  const double epsilon = flags.GetDouble("sketch-epsilon", 0.01);
  const uint32_t threshold =
      static_cast<uint32_t>(flags.GetUint("sketch-threshold", 1000));
  auto sketched = AttachSketches(*table, epsilon, /*delta=*/0.01, threshold,
                                 flags.GetUint("seed", 0));
  if (!sketched.ok()) return Fail(sketched.status());
  const Status status = WriteBinaryTableFile(*sketched, out);
  if (!status.ok()) return Fail(status);
  std::printf("sketched %s -> %s (%llu sidecar bytes)\n", in.c_str(),
              out.c_str(),
              static_cast<unsigned long long>(sketched->SketchMemoryBytes()));
  return 0;
}

int CmdInfo(const Flags& flags) {
  // Describe the file as stored: no --max-support pruning (a sketched
  // v3 file's whole point is its high-support columns).
  const std::string in = flags.GetString("in");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("--in=FILE is required"));
  }
  auto table = IsCsvPath(in)           ? ReadCsvFile(in)
               : flags.GetBool("mmap") ? ReadBinaryTableFileMapped(in)
                                       : ReadBinaryTableFile(in);
  if (!table.ok()) return Fail(table.status());
  std::printf("rows:    %llu\ncolumns: %zu\nmax u:   %u\nmemory:  %llu\n",
              static_cast<unsigned long long>(table->num_rows()),
              table->num_columns(), table->MaxSupport(),
              static_cast<unsigned long long>(table->MemoryBytes()));
  // Byte split for mapped loads: `memory` above is heap-resident only;
  // payloads borrowed from the file mapping are OS-paged.
  if (table->MappedBytes() > 0) {
    std::printf("mapped:  %llu\n",
                static_cast<unsigned long long>(table->MappedBytes()));
  }
  std::printf("shards:  %zu x %llu rows\n", table->num_shards(),
              static_cast<unsigned long long>(table->shard_size()));
  if (table->SketchMemoryBytes() > 0) {
    std::printf("sketch:  %llu\n", static_cast<unsigned long long>(
                                       table->SketchMemoryBytes()));
  }
  std::printf("%-20s %-10s %s\n", "column", "support", "entropy(bits)");
  for (const Column& column : table->columns()) {
    std::printf("%-20s %-10u %.4f%s\n", column.name().c_str(),
                column.support(), ExactEntropy(column),
                column.has_sketch() ? "  [sketch]" : "");
  }
  return 0;
}

int CmdTopK(const Flags& flags) {
  auto table = LoadTable(flags);
  if (!table.ok()) return Fail(table.status());
  const size_t k = flags.GetUint("k", 5);
  Stopwatch watch;
  if (flags.GetBool("exact")) {
    auto result = ExactTopKEntropy(*table, k);
    if (!result.ok()) return Fail(result.status());
    PrintItems(result->items, result->stats, watch.ElapsedMillis());
    return 0;
  }
  const QueryRuntime runtime = RuntimeFromFlags(flags, 0.1);
  auto result = SwopeTopKEntropy(*table, k, runtime.options);
  if (!result.ok()) return Fail(result.status());
  PrintItems(result->items, result->stats, watch.ElapsedMillis());
  runtime.PrintTrace();
  return 0;
}

int CmdFilter(const Flags& flags) {
  auto table = LoadTable(flags);
  if (!table.ok()) return Fail(table.status());
  const double eta = flags.GetDouble("eta", 1.0);
  Stopwatch watch;
  if (flags.GetBool("exact")) {
    auto result = ExactFilterEntropy(*table, eta);
    if (!result.ok()) return Fail(result.status());
    PrintItems(result->items, result->stats, watch.ElapsedMillis());
    return 0;
  }
  const QueryRuntime runtime = RuntimeFromFlags(flags, 0.05);
  auto result = SwopeFilterEntropy(*table, eta, runtime.options);
  if (!result.ok()) return Fail(result.status());
  PrintItems(result->items, result->stats, watch.ElapsedMillis());
  runtime.PrintTrace();
  return 0;
}

int CmdMiTopK(const Flags& flags) {
  auto table = LoadTable(flags);
  if (!table.ok()) return Fail(table.status());
  auto target = ResolveTarget(*table, flags);
  if (!target.ok()) return Fail(target.status());
  const size_t k = flags.GetUint("k", 5);
  Stopwatch watch;
  if (flags.GetBool("exact")) {
    auto result = ExactTopKMi(*table, *target, k);
    if (!result.ok()) return Fail(result.status());
    PrintItems(result->items, result->stats, watch.ElapsedMillis());
    return 0;
  }
  const QueryRuntime runtime = RuntimeFromFlags(flags, 0.5);
  auto result = SwopeTopKMi(*table, *target, k, runtime.options);
  if (!result.ok()) return Fail(result.status());
  PrintItems(result->items, result->stats, watch.ElapsedMillis());
  runtime.PrintTrace();
  return 0;
}

int CmdMiFilter(const Flags& flags) {
  auto table = LoadTable(flags);
  if (!table.ok()) return Fail(table.status());
  auto target = ResolveTarget(*table, flags);
  if (!target.ok()) return Fail(target.status());
  const double eta = flags.GetDouble("eta", 0.1);
  Stopwatch watch;
  if (flags.GetBool("exact")) {
    auto result = ExactFilterMi(*table, *target, eta);
    if (!result.ok()) return Fail(result.status());
    PrintItems(result->items, result->stats, watch.ElapsedMillis());
    return 0;
  }
  const QueryRuntime runtime = RuntimeFromFlags(flags, 0.5);
  auto result = SwopeFilterMi(*table, *target, eta, runtime.options);
  if (!result.ok()) return Fail(result.status());
  PrintItems(result->items, result->stats, watch.ElapsedMillis());
  runtime.PrintTrace();
  return 0;
}

int CmdNmiTopK(const Flags& flags) {
  auto table = LoadTable(flags);
  if (!table.ok()) return Fail(table.status());
  auto target = ResolveTarget(*table, flags);
  if (!target.ok()) return Fail(target.status());
  const size_t k = flags.GetUint("k", 5);
  Stopwatch watch;
  const QueryRuntime runtime = RuntimeFromFlags(flags, 0.5);
  auto result = SwopeTopKNmi(*table, *target, k, runtime.options);
  if (!result.ok()) return Fail(result.status());
  PrintItems(result->items, result->stats, watch.ElapsedMillis());
  runtime.PrintTrace();
  return 0;
}

int CmdServe(const Flags& flags) {
  EngineConfig config;
  config.num_threads = static_cast<size_t>(flags.GetUint("threads", 4));
  config.intra_query_threads =
      static_cast<size_t>(flags.GetUint("intra-threads", 1));
  config.max_in_flight =
      static_cast<size_t>(flags.GetUint("max-in-flight", 8));
  config.max_in_flight_tasks =
      static_cast<size_t>(flags.GetUint("max-in-flight-tasks", 0));
  config.max_admission_waiters =
      static_cast<size_t>(flags.GetUint("max-waiters", 0));
  config.shard_size = flags.GetUint("shard-size", 0);
  const std::string pool_mode = flags.GetString("pool-mode");
  if (!pool_mode.empty() && !ParsePoolMode(pool_mode, &config.pool_mode)) {
    return Fail(Status::InvalidArgument(
        "--pool-mode wants 'stealing' or 'single-queue', got '" + pool_mode +
        "'"));
  }
  config.memory_budget_bytes =
      flags.GetUint("memory-budget-mb", 0) * (1ULL << 20);
  config.result_cache_capacity =
      static_cast<size_t>(flags.GetUint("result-cache", 256));
  config.default_timeout_ms = flags.GetUint("timeout-ms", 0);
  config.slow_query_ms = flags.GetDouble("slow-query-ms", 0.0);
  config.event_log_capacity = static_cast<size_t>(
      flags.GetUint("event-log-capacity", EventLog::kDefaultCapacity));
  QueryEngine engine(config);
  // Per-request failures are reported in-band as {"ok":false,...} JSON;
  // reaching EOF (or quit) with the transport intact is a success.
  ServeLoop(engine, std::cin, std::cout);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string command = argv[1];
  auto flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) return Fail(flags.status());

  if (command == "gen") return CmdGen(*flags);
  if (command == "convert") return CmdConvert(*flags);
  if (command == "append") return CmdAppend(*flags);
  if (command == "sketch") return CmdSketch(*flags);
  if (command == "info") return CmdInfo(*flags);
  if (command == "topk") return CmdTopK(*flags);
  if (command == "filter") return CmdFilter(*flags);
  if (command == "mi-topk") return CmdMiTopK(*flags);
  if (command == "mi-filter") return CmdMiFilter(*flags);
  if (command == "nmi-topk") return CmdNmiTopK(*flags);
  if (command == "serve") return CmdServe(*flags);
  if (command == "help" || command == "--help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  std::fputs(kUsage, stderr);
  std::fprintf(stderr, "swope_cli: unknown command '%s'\n", command.c_str());
  return kExitUsage;
}

}  // namespace
}  // namespace swope

int main(int argc, char** argv) { return swope::Main(argc, argv); }
