#!/usr/bin/env python3
"""Repo-idiom linter for swope.

Enforces the handful of conventions that clang-tidy cannot express:

  include-guard   headers use #ifndef SWOPE_<PATH>_H_ guards derived from
                  their path (the leading src/ component is dropped, so
                  src/common/math.h guards with SWOPE_COMMON_MATH_H_ while
                  tests/test_util.h guards with SWOPE_TESTS_TEST_UTIL_H_)
  using-namespace headers must not contain `using namespace`
  naked-new       no raw new/delete expressions; use containers or smart
                  pointers. Intentional leaky singletons carry a trailing
                  `// NOLINT(swope-naked-new): reason` escape.
  banned-rand     rand()/srand() are banned; use src/common/random.h so
                  experiments stay reproducible.
  banned-sleep    sleep_for/sleep_until/usleep are banned in src/ (library
                  code must block on condition variables or poll an
                  ExecControl, never nap); tests and benches may sleep.
  banned-clock    raw steady_clock::now() and system_clock::now() are
                  banned outside src/common/stopwatch.h and src/obs/ --
                  all timing funnels through SteadyNow()/Stopwatch so the
                  observability layer sees every clock read, and
                  wall-clock reads would make certified answers depend on
                  the machine's clock.
  core-layering   the adaptive-sampling internals (src/core/
                  adaptive_sampling_driver.h and src/core/scorers.h) may
                  only be included from src/core/; everything else goes
                  through the public driver headers (swope_topk_*.h,
                  swope_filter_*.h).
  raw-codes       per-row `.code(row)` and whole-column `.codes()` access
                  is banned outside src/table/ and tests/ -- hot paths
                  batch-decode through ColumnView::Gather/Decode (see
                  docs/STORAGE.md). Benchmark baselines carry a
                  `// NOLINT(swope-raw-codes): reason` escape.

Findings print as `path:line: [rule] message` and the exit status is the
number of findings (capped at 1), so both humans and CI can consume it.

Usage: tools/lint.py [--root REPO_ROOT] [paths...]
"""

import argparse
import pathlib
import re
import sys

LINT_DIRS = ("src", "tests", "tools", "bench", "examples")
EXTENSIONS = {".h", ".cc", ".cpp"}

NAKED_NEW_RE = re.compile(r"(?<![A-Za-z0-9_])new\s+[A-Za-z_:(<]")
NAKED_DELETE_RE = re.compile(r"(?<![A-Za-z0-9_])delete(\s*\[\s*\])?\s")
DEFAULTED_DELETE_RE = re.compile(r"=\s*delete")
BANNED_RAND_RE = re.compile(r"(?<![A-Za-z0-9_])s?rand\s*\(")
USING_NAMESPACE_RE = re.compile(r"(?<![A-Za-z0-9_])using\s+namespace\b")
BANNED_SLEEP_RE = re.compile(
    r"(?<![A-Za-z0-9_])(sleep_for|sleep_until|usleep)\s*\(")
BANNED_CLOCK_RE = re.compile(r"(?:steady_clock|system_clock)\s*::\s*now\s*\(")
CLOCK_EXEMPT_PATHS = ("src/common/stopwatch.h",)
CLOCK_EXEMPT_DIRS = (("src", "obs"),)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
CORE_INTERNAL_HEADERS = frozenset({
    "src/core/adaptive_sampling_driver.h",
    "src/core/scorers.h",
})
# `.codes()` always, `.code(` only with an argument (so Status::code() and
# other nullary `.code()` accessors stay legal).
RAW_CODES_RE = re.compile(r"\.\s*codes\s*\(|\.\s*code\s*\(\s*[^)\s]")
RAW_CODES_EXEMPT_DIRS = ("src/table", "tests")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literal contents.

    Keeps newlines so line numbers survive, and keeps a NOLINT marker
    visible to the rule loop by leaving line comments' text in place only
    when they contain NOLINT.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                end = text.find("\n", i)
                end = n if end == -1 else end
                comment = text[i:end]
                out.append(comment if "NOLINT" in comment else " " * len(comment))
                i = end
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append(ch)
            elif ch == "'":
                state = "char"
                out.append(ch)
            else:
                out.append(ch)
            i += 1
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
            elif ch == quote:
                state = "code"
                out.append(ch)
                i += 1
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
    return "".join(out)


def expected_guard(relpath):
    parts = list(relpath.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "/".join(parts)
    return "SWOPE_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def check_include_guard(relpath, lines, findings):
    guard = expected_guard(relpath)
    ifndef_line = None
    for idx, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped.startswith("#ifndef"):
            ifndef_line = idx
        break
    if ifndef_line is None or lines[ifndef_line].split()[1:2] != [guard]:
        got = None
        if ifndef_line is not None:
            tokens = lines[ifndef_line].split()
            got = tokens[1] if len(tokens) > 1 else None
        findings.append(
            (relpath, (ifndef_line or 0) + 1, "include-guard",
             f"expected include guard {guard}" +
             (f", found {got}" if got else " as the first directive")))
        return
    define = lines[ifndef_line + 1].strip() if ifndef_line + 1 < len(lines) else ""
    if define != f"#define {guard}":
        findings.append(
            (relpath, ifndef_line + 2, "include-guard",
             f"#ifndef {guard} must be followed by #define {guard}"))


def lint_file(root, relpath):
    findings = []
    text = (root / relpath).read_text(encoding="utf-8")
    code = strip_comments_and_strings(text)
    raw_lines = text.splitlines()
    code_lines = code.splitlines()

    if relpath.suffix == ".h":
        check_include_guard(relpath, raw_lines, findings)

    for idx, line in enumerate(code_lines):
        raw = raw_lines[idx] if idx < len(raw_lines) else line
        prev = raw_lines[idx - 1] if idx > 0 else ""
        if "NOLINT" in raw or "NOLINTNEXTLINE" in prev:
            continue
        lineno = idx + 1
        if relpath.suffix == ".h" and USING_NAMESPACE_RE.search(line):
            findings.append((relpath, lineno, "using-namespace",
                             "`using namespace` is banned in headers"))
        if NAKED_NEW_RE.search(line):
            findings.append((relpath, lineno, "naked-new",
                             "raw `new`; use containers or smart pointers "
                             "(NOLINT(swope-naked-new) for leaky singletons)"))
        if NAKED_DELETE_RE.search(line) and not DEFAULTED_DELETE_RE.search(line):
            findings.append((relpath, lineno, "naked-new",
                             "raw `delete`; use containers or smart pointers"))
        if BANNED_RAND_RE.search(line):
            findings.append((relpath, lineno, "banned-rand",
                             "rand()/srand() are banned; use "
                             "src/common/random.h for reproducibility"))
        if relpath.parts[0] == "src" and BANNED_SLEEP_RE.search(line):
            findings.append((relpath, lineno, "banned-sleep",
                             "sleeping is banned in library code; block on "
                             "a condition variable or poll an ExecControl"))
        if (BANNED_CLOCK_RE.search(line)
                and relpath.as_posix() not in CLOCK_EXEMPT_PATHS
                and relpath.parts[:2] not in CLOCK_EXEMPT_DIRS):
            findings.append((relpath, lineno, "banned-clock",
                             "raw steady_clock/system_clock ::now(); use "
                             "SteadyNow() or Stopwatch "
                             "(src/common/stopwatch.h) so timing stays "
                             "observable and answers stay reproducible"))
        if (RAW_CODES_RE.search(line)
                and not relpath.as_posix().startswith(RAW_CODES_EXEMPT_DIRS)):
            findings.append((relpath, lineno, "raw-codes",
                             "raw per-row code()/codes() access outside "
                             "src/table/; batch-decode through "
                             "ColumnView::Gather/Decode instead "
                             "(docs/STORAGE.md)"))
        # Include paths live inside string literals, which the code view
        # blanks — gate on the directive in the code line, then read the
        # path from the raw line.
        if INCLUDE_RE.match(line):
            match = INCLUDE_RE.match(raw)
            included = match.group(1) if match else ""
            if (included in CORE_INTERNAL_HEADERS
                    and relpath.parts[:2] != ("src", "core")):
                findings.append(
                    (relpath, lineno, "core-layering",
                     f"{included} is internal to src/core/; include the "
                     "public swope_topk_*/swope_filter_* headers instead"))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="restrict to these files (default: whole tree)")
    args = parser.parse_args(argv)
    root = args.root.resolve()

    if args.paths:
        files = []
        for p in args.paths:
            resolved = p.resolve()
            if not resolved.is_file():
                print(f"lint.py: no such file: {p}", file=sys.stderr)
                return 2
            if not resolved.is_relative_to(root):
                print(f"lint.py: {p} is outside the repo root {root}",
                      file=sys.stderr)
                return 2
            files.append(resolved.relative_to(root))
    else:
        files = sorted(
            p.relative_to(root)
            for d in LINT_DIRS
            for p in (root / d).rglob("*")
            if p.suffix in EXTENSIONS and p.is_file())

    findings = []
    for relpath in files:
        findings.extend(lint_file(root, relpath))

    for relpath, lineno, rule, message in findings:
        print(f"{relpath}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
