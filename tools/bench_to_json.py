#!/usr/bin/env python3
"""Converts combined bench output (bench/run_all.sh) to machine-readable JSON.

The bench binaries print human-oriented text: one `===== <binary> =====`
banner per bench, a `# <title>` header, a `rows=... reps=...` config
line, then one `## <dataset>` section per dataset each holding a
markdown table (per-figure timings plus the `SWOPE cells` work counter).
micro_kernels prints google-benchmark rows instead. This script parses
all of it into one JSON document so downstream tooling (regression
dashboards, paper-figure plotting) never scrapes the text itself.

Usage: tools/bench_to_json.py BENCH_OUTPUT.txt [-o BENCH_results.json]

Output shape:
  {"benches": {
     "fig01_entropy_topk_time": {
       "title": "Figure 1: entropy top-k query time (ms)",
       "config": {"rows": 2000000, "reps": 3, ...},
       "datasets": {"cdc": [{"k": 1, "SWOPE": 12.3,
                             "SWOPE cells": 51200, ...}, ...]}},
     "micro_kernels": {
       "benchmarks": [{"name": "BM_CounterIncrement", "time": "2.1 ns",
                       "cpu": "2.1 ns", "iterations": 334917012}, ...]}}}
Cells parse as int or float when they look numeric; otherwise the string
is kept verbatim (speedup cells like "12.4x" stay strings).
"""

import argparse
import json
import re
import sys

SECTION_RE = re.compile(r"^===== (\S+) =====$")
TITLE_RE = re.compile(r"^# (.+)$")
CONFIG_RE = re.compile(r"^(\w+=\S+ )*\w+=\S+( \(quick\))?$")
DATASET_RE = re.compile(r"^## (.+)$")
TABLE_ROW_RE = re.compile(r"^\|(.+)\|$")
TABLE_RULE_RE = re.compile(r"^\|[-|]+\|$")
GBENCH_ROW_RE = re.compile(
    r"^(BM_\S+)\s+(\S+ \S+)\s+(\S+ \S+)\s+(\d+)")


def parse_cell(text):
    """int/float when the cell is purely numeric, else the string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_config(line):
    config = {}
    for token in line.split():
        if "=" in token:
            key, _, value = token.partition("=")
            config[key] = parse_cell(value)
        elif token == "(quick)":
            config["quick"] = True
    return config


def split_table_row(line):
    match = TABLE_ROW_RE.match(line)
    return [cell.strip() for cell in match.group(1).split("|")]


def parse_text(text):
    benches = {}
    bench = None
    dataset = None
    header = None
    for line in text.splitlines():
        line = line.rstrip()
        section = SECTION_RE.match(line)
        if section:
            bench = {"title": None, "config": {}, "datasets": {},
                     "benchmarks": []}
            benches[section.group(1)] = bench
            dataset = None
            header = None
            continue
        if bench is None:
            continue
        title = TITLE_RE.match(line)
        if title and bench["title"] is None:
            bench["title"] = title.group(1)
            continue
        if bench["title"] is not None and not bench["config"] \
                and CONFIG_RE.match(line):
            bench["config"] = parse_config(line)
            continue
        ds = DATASET_RE.match(line)
        if ds:
            # "## cdc (avg over 3 targets)" -> "cdc"; the averaging note
            # is already captured by config["targets"].
            dataset = re.sub(r"\s*\(.*\)$", "", ds.group(1))
            bench["datasets"][dataset] = []
            header = None
            continue
        gbench = GBENCH_ROW_RE.match(line)
        if gbench:
            bench["benchmarks"].append({
                "name": gbench.group(1),
                "time": gbench.group(2),
                "cpu": gbench.group(3),
                "iterations": int(gbench.group(4)),
            })
            continue
        if TABLE_RULE_RE.match(line):
            continue
        if TABLE_ROW_RE.match(line) and dataset is not None:
            cells = split_table_row(line)
            if header is None:
                header = cells
            else:
                bench["datasets"][dataset].append(
                    {key: parse_cell(value)
                     for key, value in zip(header, cells)})
            continue
        if not line:
            header = None

    # Drop empty sections so the JSON reflects what actually ran.
    for bench in benches.values():
        if not bench["datasets"]:
            del bench["datasets"]
        if not bench["benchmarks"]:
            del bench["benchmarks"]
    document = {"benches": benches}

    # Single-core hosts cannot show a pool-mode difference: both the
    # stealing and single-queue serve configurations serialize onto the
    # one core, so serve_throughput comparisons are meaningless there.
    # Annotate instead of silently publishing misleading numbers.
    metadata = benches.get("run_metadata", {}).get("config", {})
    host_cores = metadata.get("host_cores")
    if host_cores is not None:
        document["host_cores"] = host_cores
        if host_cores == 1:
            document["annotations"] = [
                "host_cores=1: serve_throughput numbers were collected on"
                " a single-core host where both pool modes serialize;"
                " pool-mode and thread-scaling comparisons are not"
                " meaningful in this run."
            ]
    return document


def main(argv):
    parser = argparse.ArgumentParser(
        description="bench text output -> JSON")
    parser.add_argument("input", help="combined bench output text file")
    parser.add_argument("-o", "--output", default="BENCH_results.json",
                        help="JSON output path (default: %(default)s)")
    args = parser.parse_args(argv)

    with open(args.input, encoding="utf-8") as f:
        document = parse_text(f.read())
    if not document["benches"]:
        print(f"bench_to_json: no bench sections found in {args.input}",
              file=sys.stderr)
        return 1
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(document, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output} "
          f"({len(document['benches'])} bench sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
