# Static-analysis wiring: clang-tidy, the repo lint script, the
# tools/analyze architecture analyzer, and the check_headers
# self-containment target.
#
# clang-tidy is opt-in (-DSWOPE_CLANG_TIDY=ON) and degrades to a warning
# when the binary is not installed, so machines without LLVM still
# configure. The Python tools (tools/lint.py, tools/analyze) need only a
# Python 3 interpreter and are registered both as build targets and as
# ctest tests, so a plain `ctest` run enforces the repo idioms and the
# declared architecture (tools/analyze/layers.toml).

option(SWOPE_CLANG_TIDY "Run clang-tidy on every compiled TU" OFF)

set(CMAKE_EXPORT_COMPILE_COMMANDS ON)

function(swope_enable_clang_tidy)
  if(NOT SWOPE_CLANG_TIDY)
    return()
  endif()
  find_program(SWOPE_CLANG_TIDY_EXE NAMES clang-tidy)
  if(NOT SWOPE_CLANG_TIDY_EXE)
    message(WARNING "SWOPE_CLANG_TIDY=ON but clang-tidy was not found; "
                    "continuing without it")
    return()
  endif()
  # Config comes from the top-level .clang-tidy; warnings-as-errors is set
  # there so CI and local runs agree.
  set(CMAKE_CXX_CLANG_TIDY "${SWOPE_CLANG_TIDY_EXE}" PARENT_SCOPE)
  message(STATUS "SWOPE: clang-tidy enabled: ${SWOPE_CLANG_TIDY_EXE}")
endfunction()

function(swope_add_lint_target)
  find_package(Python3 COMPONENTS Interpreter)
  if(NOT Python3_Interpreter_FOUND)
    message(WARNING "Python3 not found; `lint` target unavailable")
    return()
  endif()
  set(_lint_cmd ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/lint.py
                --root ${CMAKE_SOURCE_DIR})
  add_custom_target(lint
    COMMAND ${_lint_cmd}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "Running tools/lint.py"
    VERBATIM)
  if(BUILD_TESTING)
    add_test(NAME lint COMMAND ${_lint_cmd})
    add_test(NAME lint_test
      COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/lint_test.py)
  endif()
endfunction()

# tools/analyze: `analyze` build target + ctest tests. The `analyze` test
# runs the includes + locks passes over the tree (headers runs through
# the check_headers target below, under the build's own compiler);
# `analyze_test` runs the analyzer's unit tests, which include the seeded
# counterexamples for every rule.
function(swope_add_analyze_target)
  find_package(Python3 COMPONENTS Interpreter)
  if(NOT Python3_Interpreter_FOUND)
    message(WARNING "Python3 not found; `analyze` target unavailable")
    return()
  endif()
  set(_analyze_cmd ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/analyze
                   includes locks --root ${CMAKE_SOURCE_DIR})
  add_custom_target(analyze
    COMMAND ${_analyze_cmd}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "Running tools/analyze (includes, locks)"
    VERBATIM)
  if(BUILD_TESTING)
    add_test(NAME analyze COMMAND ${_analyze_cmd})
    add_test(NAME analyze_test
      COMMAND ${Python3_EXECUTABLE}
              ${CMAKE_SOURCE_DIR}/tools/analyze/analyze_test.py)
  endif()
endfunction()

# check_headers: one generated stub TU per public src/ header, compiled
# as an object library so every header must be self-contained under the
# build's real compiler and warning set. Stubs are (re)generated at
# configure time by the analyzer's headers pass; a new header therefore
# joins the check at the next configure (CI configures fresh every run).
function(swope_add_check_headers_target)
  find_package(Python3 COMPONENTS Interpreter)
  if(NOT Python3_Interpreter_FOUND)
    message(WARNING "Python3 not found; `check_headers` target unavailable")
    return()
  endif()
  set(_stub_dir ${CMAKE_BINARY_DIR}/check_headers)
  execute_process(
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/analyze
            headers --root ${CMAKE_SOURCE_DIR} --out-dir ${_stub_dir} -q
    RESULT_VARIABLE _stub_result)
  if(NOT _stub_result EQUAL 0)
    message(FATAL_ERROR "tools/analyze headers failed to generate stubs")
  endif()
  file(GLOB _stubs CONFIGURE_DEPENDS ${_stub_dir}/*.check.cc)
  add_library(check_headers_objects OBJECT EXCLUDE_FROM_ALL ${_stubs})
  target_include_directories(check_headers_objects
    PRIVATE ${CMAKE_SOURCE_DIR})
  add_custom_target(check_headers DEPENDS check_headers_objects)
  if(BUILD_TESTING)
    # Building the stub objects IS the test; driving it through ctest
    # keeps `ctest` the single local verification entry point.
    add_test(NAME check_headers
      COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR}
              --target check_headers)
    set_tests_properties(check_headers PROPERTIES
      RUN_SERIAL TRUE
      LABELS "static-analysis")
  endif()
endfunction()
