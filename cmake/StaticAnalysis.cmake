# Static-analysis wiring: clang-tidy and the repo lint script.
#
# clang-tidy is opt-in (-DSWOPE_CLANG_TIDY=ON) and degrades to a warning
# when the binary is not installed, so machines without LLVM still
# configure. The lint script needs only a Python 3 interpreter and is
# registered both as a `lint` build target and as a ctest test, so a
# plain `ctest` run enforces the repo idioms.

option(SWOPE_CLANG_TIDY "Run clang-tidy on every compiled TU" OFF)

set(CMAKE_EXPORT_COMPILE_COMMANDS ON)

function(swope_enable_clang_tidy)
  if(NOT SWOPE_CLANG_TIDY)
    return()
  endif()
  find_program(SWOPE_CLANG_TIDY_EXE NAMES clang-tidy)
  if(NOT SWOPE_CLANG_TIDY_EXE)
    message(WARNING "SWOPE_CLANG_TIDY=ON but clang-tidy was not found; "
                    "continuing without it")
    return()
  endif()
  # Config comes from the top-level .clang-tidy; warnings-as-errors is set
  # there so CI and local runs agree.
  set(CMAKE_CXX_CLANG_TIDY "${SWOPE_CLANG_TIDY_EXE}" PARENT_SCOPE)
  message(STATUS "SWOPE: clang-tidy enabled: ${SWOPE_CLANG_TIDY_EXE}")
endfunction()

function(swope_add_lint_target)
  find_package(Python3 COMPONENTS Interpreter)
  if(NOT Python3_Interpreter_FOUND)
    message(WARNING "Python3 not found; `lint` target unavailable")
    return()
  endif()
  set(_lint_cmd ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/lint.py
                --root ${CMAKE_SOURCE_DIR})
  add_custom_target(lint
    COMMAND ${_lint_cmd}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "Running tools/lint.py"
    VERBATIM)
  if(BUILD_TESTING)
    add_test(NAME lint COMMAND ${_lint_cmd})
  endif()
endfunction()
