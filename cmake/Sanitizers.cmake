# Sanitizer configuration for the whole tree.
#
# SWOPE_SANITIZE is a comma- or semicolon-separated list drawn from
# {address, undefined, thread, leak}. Flags are applied with directory
# scope from the top-level CMakeLists, so src/, tests/, tools/, bench/,
# and examples/ all compile and link with the same instrumentation.
#
#   cmake -B build -S . -DSWOPE_SANITIZE=address,undefined
#   cmake -B build -S . -DSWOPE_SANITIZE=thread
#
# thread is mutually exclusive with address/leak (the runtimes conflict);
# combining them is a configure-time error rather than a cryptic link
# failure.

set(SWOPE_SANITIZE "" CACHE STRING
    "Comma-separated sanitizers: address, undefined, thread, leak")

function(swope_enable_sanitizers)
  if(SWOPE_SANITIZE STREQUAL "")
    return()
  endif()

  string(REPLACE "," ";" _sans "${SWOPE_SANITIZE}")
  set(_known address undefined thread leak)
  foreach(_san IN LISTS _sans)
    if(NOT _san IN_LIST _known)
      message(FATAL_ERROR
        "SWOPE_SANITIZE: unknown sanitizer '${_san}' "
        "(expected a comma-separated subset of: ${_known})")
    endif()
  endforeach()

  if("thread" IN_LIST _sans AND
     ("address" IN_LIST _sans OR "leak" IN_LIST _sans))
    message(FATAL_ERROR
      "SWOPE_SANITIZE: thread cannot be combined with address or leak")
  endif()

  string(REPLACE ";" "," _fsan "${_sans}")
  set(_flags "-fsanitize=${_fsan}" -fno-omit-frame-pointer)
  if("undefined" IN_LIST _sans)
    # Make UB abort the test instead of printing and carrying on.
    list(APPEND _flags -fno-sanitize-recover=all)
  endif()

  add_compile_options(${_flags})
  add_link_options(${_flags})
  message(STATUS "SWOPE: sanitizers enabled: ${_fsan}")
endfunction()
