# Warning configuration for the whole tree.
#
# Base warnings apply to every target with directory scope. -Werror is
# promoted per-directory (src/ and tests/ by default) through
# swope_enable_werror(), gated on the SWOPE_WERROR cache option so a
# newer compiler with novel diagnostics never hard-blocks a build:
#
#   cmake -B build -S . -DSWOPE_WERROR=OFF

option(SWOPE_WERROR "Treat warnings as errors in src/ and tests/" ON)

include(CheckCXXCompilerFlag)

function(swope_enable_warnings)
  add_compile_options(-Wall -Wextra -Wshadow -Wconversion)

  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU" AND
     CMAKE_CXX_COMPILER_VERSION VERSION_LESS 13)
    # GCC 12 emits bogus -Wrestrict warnings for std::string concatenation
    # inlined from libstdc++ headers (GCC PR105329); silence just that
    # diagnostic so -Werror stays viable.
    add_compile_options(-Wno-restrict)
  endif()

  # Clang's thread-safety analysis checks the GUARDED_BY/REQUIRES/ACQUIRE
  # annotations from src/common/thread_annotations.h against the
  # swope::Mutex capability (src/common/mutex.h); GCC ignores both the
  # flags and the attributes. The full set is on — -beta for the newest
  # checks and -negative so REQUIRES(!mu) contracts catch double-locking
  # (tests/compile_fail/double_lock.cc proves it). With SWOPE_WERROR (the
  # default, and what CI's clang job builds with) any violation is a
  # build break.
  check_cxx_compiler_flag(-Wthread-safety SWOPE_HAVE_WTHREAD_SAFETY)
  if(SWOPE_HAVE_WTHREAD_SAFETY)
    add_compile_options(-Wthread-safety)
    check_cxx_compiler_flag(-Wthread-safety-beta SWOPE_HAVE_WTHREAD_SAFETY_BETA)
    if(SWOPE_HAVE_WTHREAD_SAFETY_BETA)
      add_compile_options(-Wthread-safety-beta)
    endif()
    check_cxx_compiler_flag(-Wthread-safety-negative
                            SWOPE_HAVE_WTHREAD_SAFETY_NEGATIVE)
    if(SWOPE_HAVE_WTHREAD_SAFETY_NEGATIVE)
      add_compile_options(-Wthread-safety-negative)
    endif()
  endif()
endfunction()

# Call from a directory whose targets should fail on warnings.
function(swope_enable_werror)
  if(SWOPE_WERROR)
    add_compile_options(-Werror)
  endif()
endfunction()
